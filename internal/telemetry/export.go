package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// tracePID is the synthetic process ID used for every track: the whole
// simulator is rendered as one Perfetto process with one thread per track.
const tracePID = 1

// writeMicros renders virtual nanoseconds as the microsecond decimal the
// trace_event format expects, with fixed three-digit nanosecond precision.
// Integer arithmetic keeps the formatting byte-deterministic (no float
// rounding at the mercy of the value's magnitude).
func writeMicros(w *bufio.Writer, ns int64) {
	if ns < 0 {
		// Spans never run backwards in virtual time; clamp defensively so a
		// bug upstream yields a loadable (if wrong) trace instead of garbage.
		ns = 0
	}
	w.WriteString(strconv.FormatInt(ns/1000, 10))
	fmt.Fprintf(w, ".%03d", ns%1000)
}

// WriteTrace emits the full event log as Chrome trace_event JSON
// ("JSON object format": a traceEvents array plus metadata). Load the file
// in https://ui.perfetto.dev or chrome://tracing.
//
// Output is byte-deterministic: metadata first (process name, then one
// thread_name record per track in registration order), then events in
// record order. Thread IDs are track registration order + 1.
func (t *Tracer) WriteTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[` + "\n")
	fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"mglrusim"}}`, tracePID)
	for i, name := range t.tracks {
		bw.WriteString(",\n")
		fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			tracePID, i+1, jsonString(name))
	}
	for i := range t.events {
		ev := &t.events[i]
		bw.WriteString(",\n")
		fmt.Fprintf(bw, `{"name":%s,"ph":"%s","pid":%d,"tid":%d,"ts":`,
			jsonString(ev.Name), phase(ev), tracePID, int(ev.Track)+1)
		writeMicros(bw, int64(ev.Ts))
		if !ev.Instant {
			bw.WriteString(`,"dur":`)
			writeMicros(bw, ev.Dur)
		} else {
			// Thread-scoped instant.
			bw.WriteString(`,"s":"t"`)
		}
		if ev.HasArg {
			fmt.Fprintf(bw, `,"args":{"v":%d}`, ev.Arg)
		}
		bw.WriteString("}")
	}
	bw.WriteString("\n],")
	fmt.Fprintf(bw, `"displayTimeUnit":"ns","otherData":{"clock":"virtual","dropped_events":%d}}`, t.dropped)
	bw.WriteString("\n")
	return bw.Flush()
}

func phase(ev *Event) string {
	if ev.Instant {
		return "i"
	}
	return "X"
}

// jsonString quotes a name for direct embedding in the hand-built JSON.
// strconv.Quote's escaping rules are a superset of JSON's needs for the
// ASCII identifiers used as event/track names.
func jsonString(s string) string { return strconv.Quote(s) }

// WriteCounters emits the sampled counter series as CSV: a time_ns column
// followed by one column per gauge in registration order.
func (t *Tracer) WriteCounters(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("time_ns")
	if t != nil {
		for _, g := range t.gauges {
			bw.WriteByte(',')
			bw.WriteString(g.name)
		}
		for i, ts := range t.sampleT {
			bw.WriteByte('\n')
			bw.WriteString(strconv.FormatInt(int64(ts), 10))
			for _, v := range t.samples[i] {
				bw.WriteByte(',')
				bw.WriteString(strconv.FormatInt(v, 10))
			}
		}
	}
	bw.WriteByte('\n')
	return bw.Flush()
}

// WriteFlight dumps the flight-recorder ring as human-readable text, newest
// event last. The reason line records why the dump was taken (the trial
// error, or a degradation marker such as observed OOM kills).
func (t *Tracer) WriteFlight(w io.Writer, reason string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "flight recorder dump\nreason: %s\n", reason)
	if t == nil {
		bw.WriteString("tracer: nil\n")
		return bw.Flush()
	}
	if len(t.notes) > 0 {
		fmt.Fprintf(bw, "notes (%d, dropped %d):\n", len(t.notes), t.notesDropped)
		for _, n := range t.notes {
			fmt.Fprintf(bw, "  %s\n", n)
		}
	}
	events := t.RingEvents()
	first := uint64(0)
	if t.ringPos > uint64(len(events)) {
		first = t.ringPos - uint64(len(events))
	}
	fmt.Fprintf(bw, "events %d..%d of %d (ring %d, log dropped %d)\n",
		first, t.ringPos, t.ringPos, len(t.ring), t.dropped)
	for _, ev := range events {
		fmt.Fprintf(bw, "[%12d ns] %-14s %-20s", int64(ev.Ts), t.trackName(ev.Track), ev.Name)
		if !ev.Instant {
			fmt.Fprintf(bw, " dur=%dns", ev.Dur)
		}
		if ev.HasArg {
			fmt.Fprintf(bw, " v=%d", ev.Arg)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

func (t *Tracer) trackName(id TrackID) string {
	if int(id) < len(t.tracks) {
		return t.tracks[id]
	}
	return fmt.Sprintf("track-%d", id)
}

// ValidateTrace checks data against the Chrome trace-event JSON object
// format: a traceEvents array whose records carry the fields each phase
// requires. It returns the first violation found, or nil for a loadable
// trace.
func ValidateTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace is not valid JSON: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("missing traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		if _, ok := ev["name"].(string); !ok {
			return fmt.Errorf("event %d: missing string field %q", i, "name")
		}
		ph, ok := ev["ph"].(string)
		if !ok {
			return fmt.Errorf("event %d: missing string field %q", i, "ph")
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("event %d: missing numeric field %q", i, "pid")
		}
		if _, ok := ev["tid"].(float64); !ok {
			return fmt.Errorf("event %d: missing numeric field %q", i, "tid")
		}
		switch ph {
		case "M":
			// Metadata records need no timestamp.
		case "X":
			if _, ok := ev["ts"].(float64); !ok {
				return fmt.Errorf("event %d: complete event missing numeric %q", i, "ts")
			}
			if _, ok := ev["dur"].(float64); !ok {
				return fmt.Errorf("event %d: complete event missing numeric %q", i, "dur")
			}
		case "i", "I":
			if _, ok := ev["ts"].(float64); !ok {
				return fmt.Errorf("event %d: instant event missing numeric %q", i, "ts")
			}
		case "B", "E", "b", "e", "n", "C", "s", "t", "f":
			if _, ok := ev["ts"].(float64); !ok {
				return fmt.Errorf("event %d: phase %q missing numeric %q", i, ph, "ts")
			}
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, ph)
		}
	}
	return nil
}
