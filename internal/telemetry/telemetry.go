// Package telemetry is the simulator's virtual-time observability plane.
//
// It provides three cooperating facilities, all stamped with *simulated*
// nanoseconds so that output is a pure function of the seeds:
//
//   - Spans and instants: begin/end events on named tracks (one track per
//     simulated thread or kernel daemon), exported as Chrome trace_event
//     JSON loadable in Perfetto or chrome://tracing.
//   - Counters: a registry of gauge closures sampled at a configurable
//     virtual-time cadence into a time-series CSV.
//   - Flight recorder: a fixed-size ring of the most recent events that can
//     be dumped when a trial fails (OOM, livelock, panic, audit error), so
//     degraded runs are post-mortem-debuggable without a full trace.
//
// A nil *Tracer is valid everywhere: every method nil-checks its receiver,
// and instrumented subsystems additionally guard their own tracer fields,
// mirroring the Config.Audit pattern — tracing off must cost nothing on the
// hot path beyond a pointer test.
//
// Determinism: tracks, gauges, and events are kept in registration/record
// order (maps are used only for lookup), and all exporters format numbers
// with explicit integer arithmetic, so same-seed trials produce
// byte-identical artifacts regardless of host parallelism.
package telemetry

import (
	"mglrusim/internal/sim"
)

// Config sizes a Tracer.
type Config struct {
	// RingSize is the flight-recorder capacity in events. 0 selects
	// DefaultRingSize; negative disables the ring.
	RingSize int
	// MetricsInterval is the virtual-time cadence at which the owner should
	// call Sample. The tracer itself does not schedule sampling — the trial
	// runner spawns a daemon — but the chosen cadence travels with the
	// tracer so every layer agrees on it.
	MetricsInterval sim.Duration
	// MaxEvents bounds the retained full event log (the flight ring is
	// unaffected). 0 selects DefaultMaxEvents. Overflow events are counted
	// in Dropped and still feed the ring.
	MaxEvents int
}

// DefaultRingSize is the flight-recorder capacity when Config.RingSize is 0.
const DefaultRingSize = 256

// DefaultMaxEvents caps the retained event log when Config.MaxEvents is 0.
const DefaultMaxEvents = 1 << 20

// TrackID names a registered track (a Perfetto thread lane).
type TrackID int32

// Event is one recorded trace event. Complete spans carry a duration;
// instants do not.
type Event struct {
	Track   TrackID
	Ts      sim.Time
	Dur     sim.Duration
	Name    string
	Arg     int64
	Instant bool
	HasArg  bool
}

type gauge struct {
	name string
	fn   func() int64
}

// Tracer records spans, instants, and counter samples for one trial.
// It is not safe for concurrent use; the simulation engine is
// single-threaded by construction, which is what makes output
// deterministic.
type Tracer struct {
	cfg          Config
	clock        func() sim.Time
	tracks       []string
	trackID      map[string]TrackID
	events       []Event
	dropped      uint64
	ring         []Event
	ringPos      uint64 // total events ever offered to the ring
	gauges       []gauge
	sampleT      []sim.Time
	samples      [][]int64
	notes        []string
	notesDropped uint64
}

// MaxNotes bounds the retained annotation lines per tracer.
const MaxNotes = 256

// New builds a Tracer. The clock is unbound until Bind is called; events
// recorded before then are stamped at time 0.
func New(cfg Config) *Tracer {
	if cfg.RingSize == 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.RingSize < 0 {
		cfg.RingSize = 0
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	return &Tracer{
		cfg:     cfg,
		trackID: make(map[string]TrackID),
		ring:    make([]Event, cfg.RingSize),
	}
}

// Bind attaches the virtual clock (normally sim.Engine.Now). Safe on nil.
func (t *Tracer) Bind(clock func() sim.Time) {
	if t == nil {
		return
	}
	t.clock = clock
}

// MetricsInterval reports the configured sampling cadence (0 on nil).
func (t *Tracer) MetricsInterval() sim.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.MetricsInterval
}

func (t *Tracer) now() sim.Time {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// Track returns the ID for a named track, registering it on first use.
// Track order (and therefore exported thread IDs) is first-use order.
// On a nil tracer it returns 0; the ID is only meaningful when passed back
// to the same tracer, so the placeholder is harmless.
func (t *Tracer) Track(name string) TrackID {
	if t == nil {
		return 0
	}
	if id, ok := t.trackID[name]; ok {
		return id
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, name)
	t.trackID[name] = id
	return id
}

func (t *Tracer) record(ev Event) {
	if len(t.events) < t.cfg.MaxEvents {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	if n := uint64(len(t.ring)); n > 0 {
		t.ring[t.ringPos%n] = ev
		t.ringPos++
	}
}

// Span is an open interval started by Begin. The zero Span (and any Span
// from a nil tracer) is inert: End/EndArg on it do nothing.
type Span struct {
	t     *Tracer
	track TrackID
	name  string
	start sim.Time
}

// Begin opens a span on a track. Close it with End or EndArg.
func (t *Tracer) Begin(track TrackID, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, track: track, name: name, start: t.now()}
}

// End closes the span at the current virtual time.
func (s Span) End() { s.end(0, false) }

// EndArg closes the span and attaches one integer argument (rendered as
// args.v in the trace, e.g. pages scanned during the span).
func (s Span) EndArg(arg int64) { s.end(arg, true) }

func (s Span) end(arg int64, hasArg bool) {
	if s.t == nil {
		return
	}
	now := s.t.now()
	s.t.record(Event{
		Track: s.track, Ts: s.start, Dur: sim.Duration(now - s.start),
		Name: s.name, Arg: arg, HasArg: hasArg,
	})
}

// Emit records a complete span with explicit start and duration, for
// callers that already know the completion time — e.g. an asynchronous
// device submission whose service time is booked up front.
func (t *Tracer) Emit(track TrackID, name string, ts sim.Time, dur sim.Duration, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{Track: track, Ts: ts, Dur: dur, Name: name, Arg: arg, HasArg: true})
}

// Instant records a zero-duration event with one integer argument.
func (t *Tracer) Instant(track TrackID, name string, arg int64) {
	if t == nil {
		return
	}
	t.record(Event{Track: track, Ts: t.now(), Name: name, Arg: arg, Instant: true, HasArg: true})
}

// Gauge registers a named counter closure. Closures are invoked on every
// Sample in registration order; they must be cheap and side-effect-free.
func (t *Tracer) Gauge(name string, fn func() int64) {
	if t == nil {
		return
	}
	t.gauges = append(t.gauges, gauge{name: name, fn: fn})
}

// Sample snapshots every registered gauge at the current virtual time,
// appending one row to the counter time series.
func (t *Tracer) Sample() {
	if t == nil || len(t.gauges) == 0 {
		return
	}
	row := make([]int64, len(t.gauges))
	for i := range t.gauges {
		row[i] = t.gauges[i].fn()
	}
	t.sampleT = append(t.sampleT, t.now())
	t.samples = append(t.samples, row)
}

// CounterNames returns the registered gauge names in registration order.
func (t *Tracer) CounterNames() []string {
	if t == nil {
		return nil
	}
	out := make([]string, len(t.gauges))
	for i := range t.gauges {
		out[i] = t.gauges[i].name
	}
	return out
}

// CounterSeries returns the sampled rows: one timestamp per row, columns
// aligned with CounterNames. The returned slices alias internal storage;
// callers must not mutate them.
func (t *Tracer) CounterSeries() ([]sim.Time, [][]int64) {
	if t == nil {
		return nil, nil
	}
	return t.sampleT, t.samples
}

// Note attaches a free-form annotation line to the tracer, surfaced in
// flight-recorder dumps alongside the event ring. It is the channel for
// out-of-band diagnostics that have no natural span shape — most
// importantly the invariant auditor's violation diffs, which must reach
// flight.txt even when the trial dies before its error path runs.
// Bounded at MaxNotes; overflow is counted, not retained.
func (t *Tracer) Note(line string) {
	if t == nil {
		return
	}
	if len(t.notes) >= MaxNotes {
		t.notesDropped++
		return
	}
	t.notes = append(t.notes, line)
}

// Notes returns the retained annotation lines in record order, plus the
// count of lines dropped past MaxNotes.
func (t *Tracer) Notes() ([]string, uint64) {
	if t == nil {
		return nil, 0
	}
	return t.notes, t.notesDropped
}

// EventCount reports how many events were retained in the full log.
func (t *Tracer) EventCount() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped reports events discarded from the full log after MaxEvents.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// RingEvents returns the flight-recorder contents oldest-first.
func (t *Tracer) RingEvents() []Event {
	if t == nil || len(t.ring) == 0 || t.ringPos == 0 {
		return nil
	}
	n := uint64(len(t.ring))
	if t.ringPos <= n {
		out := make([]Event, t.ringPos)
		copy(out, t.ring[:t.ringPos])
		return out
	}
	out := make([]Event, 0, n)
	start := t.ringPos % n
	out = append(out, t.ring[start:]...)
	out = append(out, t.ring[:start]...)
	return out
}

// Registrant is implemented by subsystems (replacement policies, devices)
// that want to register their own gauges and tracks once a tracer is
// attached to the trial.
type Registrant interface {
	RegisterTelemetry(t *Tracer)
}
