package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"mglrusim/internal/sim"
)

// fakeClock is a settable virtual clock for driving the tracer without an
// engine.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) now() sim.Time { return c.t }

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Bind(func() sim.Time { return 0 })
	id := tr.Track("app")
	sp := tr.Begin(id, "work")
	sp.End()
	sp.EndArg(3)
	tr.Instant(id, "mark", 1)
	tr.Gauge("g", func() int64 { return 1 })
	tr.Sample()
	if tr.EventCount() != 0 || tr.Dropped() != 0 || tr.RingEvents() != nil {
		t.Fatal("nil tracer retained state")
	}
	if names := tr.CounterNames(); names != nil {
		t.Fatalf("nil tracer reported counters %v", names)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("nil WriteTrace: %v", err)
	}
	if err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("nil trace invalid: %v", err)
	}
	buf.Reset()
	if err := tr.WriteCounters(&buf); err != nil {
		t.Fatalf("nil WriteCounters: %v", err)
	}
	buf.Reset()
	if err := tr.WriteFlight(&buf, "because"); err != nil {
		t.Fatalf("nil WriteFlight: %v", err)
	}
	if !strings.Contains(buf.String(), "because") {
		t.Fatal("flight dump lost its reason")
	}
}

func TestSpansAndInstantsRecord(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Config{})
	tr.Bind(clk.now)
	app := tr.Track("app-0")
	daemon := tr.Track("kswapd")
	if app == daemon {
		t.Fatal("distinct tracks share an ID")
	}
	if again := tr.Track("app-0"); again != app {
		t.Fatalf("re-registration changed ID: %d != %d", again, app)
	}

	clk.t = 1000
	sp := tr.Begin(app, "fault")
	clk.t = 4000
	sp.EndArg(7)
	tr.Instant(daemon, "wake", 2)

	if tr.EventCount() != 2 {
		t.Fatalf("events = %d, want 2", tr.EventCount())
	}
	evs := tr.RingEvents()
	if len(evs) != 2 {
		t.Fatalf("ring holds %d, want 2", len(evs))
	}
	if evs[0].Ts != 1000 || evs[0].Dur != 3000 || evs[0].Name != "fault" || !evs[0].HasArg || evs[0].Arg != 7 {
		t.Fatalf("span recorded wrong: %+v", evs[0])
	}
	if !evs[1].Instant || evs[1].Ts != 4000 {
		t.Fatalf("instant recorded wrong: %+v", evs[1])
	}
}

func TestRingWrapKeepsNewestOldestFirst(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Config{RingSize: 4})
	tr.Bind(clk.now)
	tk := tr.Track("t")
	for i := 0; i < 10; i++ {
		clk.t = sim.Time(i)
		tr.Instant(tk, "e", int64(i))
	}
	evs := tr.RingEvents()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Arg != want {
			t.Fatalf("ring[%d].Arg = %d, want %d (oldest-first)", i, ev.Arg, want)
		}
	}
}

func TestMaxEventsDropsButRingSurvives(t *testing.T) {
	tr := New(Config{RingSize: 2, MaxEvents: 3})
	tk := tr.Track("t")
	for i := 0; i < 5; i++ {
		tr.Instant(tk, "e", int64(i))
	}
	if tr.EventCount() != 3 {
		t.Fatalf("log kept %d, want 3", tr.EventCount())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.RingEvents()
	if len(evs) != 2 || evs[1].Arg != 4 {
		t.Fatalf("ring lost post-overflow events: %+v", evs)
	}
}

func TestCounterSamplingAndCSV(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Config{MetricsInterval: 5 * sim.Millisecond})
	tr.Bind(clk.now)
	var a, b int64
	tr.Gauge("scan.pages", func() int64 { return a })
	tr.Gauge("evict.pages", func() int64 { return b })
	if got := tr.MetricsInterval(); got != 5*sim.Millisecond {
		t.Fatalf("interval = %d", got)
	}

	clk.t = 0
	tr.Sample()
	a, b = 10, 3
	clk.t = 5 * sim.Time(sim.Millisecond)
	tr.Sample()

	var buf bytes.Buffer
	if err := tr.WriteCounters(&buf); err != nil {
		t.Fatal(err)
	}
	want := "time_ns,scan.pages,evict.pages\n0,0,0\n5000000,10,3\n"
	if buf.String() != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestTraceJSONValidAndDeterministic(t *testing.T) {
	build := func() []byte {
		clk := &fakeClock{}
		tr := New(Config{})
		tr.Bind(clk.now)
		app := tr.Track("app-0")
		kd := tr.Track("kswapd")
		clk.t = 1500
		sp := tr.Begin(app, "major-fault")
		clk.t = 2750
		sp.End()
		tr.Instant(kd, "watermark", 12)
		var buf bytes.Buffer
		if err := tr.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one, two := build(), build()
	if !bytes.Equal(one, two) {
		t.Fatal("identical histories produced different trace bytes")
	}
	if err := ValidateTrace(one); err != nil {
		t.Fatalf("trace failed schema validation: %v\n%s", err, one)
	}
	s := string(one)
	// Timestamps are microseconds with fixed nanosecond precision.
	if !strings.Contains(s, `"ts":1.500`) || !strings.Contains(s, `"dur":1.250`) {
		t.Fatalf("timestamp formatting wrong:\n%s", s)
	}
	if !strings.Contains(s, `"name":"kswapd"`) {
		t.Fatalf("thread metadata missing:\n%s", s)
	}
}

func TestValidateTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents":[`,
		"no array":      `{}`,
		"unnamed event": `{"traceEvents":[{"ph":"X","pid":1,"tid":1,"ts":0,"dur":1}]}`,
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"Z","pid":1,"tid":1,"ts":0}]}`,
		"X without dur": `{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":1,"ts":0}]}`,
	}
	for label, doc := range cases {
		if err := ValidateTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted %s", label, doc)
		}
	}
}

func TestFlightDumpContents(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Config{RingSize: 8})
	tr.Bind(clk.now)
	tk := tr.Track("oom")
	clk.t = 42
	tr.Instant(tk, "oom-kill", 3)
	var buf bytes.Buffer
	if err := tr.WriteFlight(&buf, "vmm: out of memory"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"reason: vmm: out of memory", "oom-kill", "v=3", "42 ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
