package tiering

import (
	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
)

// TPP is a transparent-page-placement policy modeled on Maruf et al.
// (ASPLOS'23), which the paper describes as "directly built on top of the
// data structures used for Clock": fast-tier pages live on active/
// inactive lists; demotion takes the inactive tail to the slow tier
// instead of a swap device; slow-tier accesses promote, gated by a
// second-touch filter so single-use pages don't churn.
type TPP struct {
	m        *Manager
	active   *mem.List
	inactive *mem.List

	// touched marks slow pages that have one recent access; the second
	// access within a scan period promotes (TPP's promotion filter).
	touched map[pagetable.VPN]bool

	// DisableSecondTouch promotes on first touch (ablation knob).
	DisableSecondTouch bool
}

// NewTPP creates the policy.
func NewTPP() *TPP { return &TPP{touched: map[pagetable.VPN]bool{}} }

// Name implements MigrationPolicy.
func (t *TPP) Name() string { return "tpp" }

// Attach implements MigrationPolicy.
func (t *TPP) Attach(m *Manager) {
	t.m = m
	t.active = mem.NewList(m.Mem(), 0)
	t.inactive = mem.NewList(m.Mem(), 1)
}

// Placed implements MigrationPolicy: fast-tier pages enter the inactive
// list; slow-tier pages are tracked only via touches.
func (t *TPP) Placed(v *sim.Env, vpn pagetable.VPN, f mem.FrameID) {
	if t.m.TierOf(f) == TierFast {
		t.inactive.PushHead(f)
	}
}

// Poisoned implements MigrationPolicy: TPP relies on NUMA hint faults for
// slow-tier pages; the manager models that visibility by always reporting
// slow touches, so no extra poisoning is needed.
func (t *TPP) Poisoned(vpn pagetable.VPN) bool { return false }

// SlowTouched implements MigrationPolicy: second-touch promotion.
func (t *TPP) SlowTouched(v *sim.Env, vpn pagetable.VPN) {
	if !t.DisableSecondTouch && !t.touched[vpn] {
		t.touched[vpn] = true
		return
	}
	delete(t.touched, vpn)
	t.promote(v, vpn)
}

// promote moves vpn to the fast tier, demoting to make room if needed.
func (t *TPP) promote(v *sim.Env, vpn pagetable.VPN) {
	f := t.m.AllocFast()
	if f == mem.NilFrame {
		// Make headroom first, as TPP's demotion watermark does.
		t.demoteCold(v, t.m.Config().FreeTarget)
		f = t.m.AllocFast()
		if f == mem.NilFrame {
			t.m.DeniedPromotion()
			return
		}
	}
	t.m.Promote(v, vpn, f)
	t.inactive.PushHead(f)
}

// demoteCold scans the inactive tail, activating referenced pages and
// demoting cold ones to the slow tier — Clock's second chance aimed at a
// tier instead of a device.
func (t *TPP) demoteCold(v *sim.Env, want int) {
	table := t.m.Table()
	budget := want * 8
	for demoted := 0; demoted < want && budget > 0; budget-- {
		if t.inactive.Empty() {
			t.balance()
			if t.inactive.Empty() {
				return
			}
		}
		f := t.inactive.PopTail()
		vpn := pagetable.VPN(t.m.Mem().Frame(f).VPN)
		if table.TestAndClearAccessed(vpn) {
			t.active.PushHead(f)
			continue
		}
		dst := t.m.AllocSlow()
		if dst == mem.NilFrame {
			// Slow tier full: nothing to demote into; put it back.
			t.inactive.PushHead(f)
			return
		}
		// Demote migrates the page into dst and frees f (the old fast
		// frame) internally.
		t.m.Demote(v, vpn, dst)
		demoted++
	}
}

// balance refills the inactive list from the active tail (unchecked
// demotion within the fast tier, as Clock does when inactive runs low).
func (t *TPP) balance() {
	for i := 0; i < 32 && !t.active.Empty(); i++ {
		f := t.active.PopTail()
		vpn := pagetable.VPN(t.m.Mem().Frame(f).VPN)
		if t.m.Table().TestAndClearAccessed(vpn) {
			t.active.PushHead(f)
			continue
		}
		t.inactive.PushHead(f)
	}
}

// Tick implements MigrationPolicy: keep demotion headroom available and
// decay the second-touch filter.
func (t *TPP) Tick(v *sim.Env) {
	cfg := t.m.Config()
	free := 0
	// Cheap check: try to allocate headroom frames; refund immediately.
	var parked []mem.FrameID
	for i := 0; i < cfg.FreeTarget; i++ {
		f := t.m.AllocFast()
		if f == mem.NilFrame {
			break
		}
		parked = append(parked, f)
		free++
	}
	for _, f := range parked {
		t.m.Mem().Free(f)
	}
	if free < cfg.FreeTarget {
		t.demoteCold(v, cfg.FreeTarget-free)
	}
	// Second-touch filter decays every period.
	for vpn := range t.touched {
		delete(t.touched, vpn)
	}
}

// AutoNUMA is an AutoNUMA-like hint-fault sampler: it periodically
// poisons a random sample of pages; a subsequent access faults, and a
// faulting slow-tier page is promoted if the fast tier has room. As the
// paper notes (§II-C), AutoNUMA has no demotion path — once the fast
// tier fills, promotion stops, which is its documented limitation in
// tiered-memory settings.
type AutoNUMA struct {
	m        *Manager
	poisoned map[pagetable.VPN]bool
	// SampleSize is how many pages each Tick poisons.
	SampleSize int
}

// NewAutoNUMA creates the policy.
func NewAutoNUMA() *AutoNUMA {
	return &AutoNUMA{poisoned: map[pagetable.VPN]bool{}, SampleSize: 64}
}

// Name implements MigrationPolicy.
func (a *AutoNUMA) Name() string { return "autonuma" }

// Attach implements MigrationPolicy.
func (a *AutoNUMA) Attach(m *Manager) { a.m = m }

// Placed implements MigrationPolicy.
func (a *AutoNUMA) Placed(v *sim.Env, vpn pagetable.VPN, f mem.FrameID) {}

// Poisoned implements MigrationPolicy.
func (a *AutoNUMA) Poisoned(vpn pagetable.VPN) bool {
	if a.poisoned[vpn] {
		delete(a.poisoned, vpn) // hint fault consumes the poison
		return true
	}
	return false
}

// SlowTouched implements MigrationPolicy: promote if there is room —
// and only if there is room, because AutoNUMA cannot demote.
func (a *AutoNUMA) SlowTouched(v *sim.Env, vpn pagetable.VPN) {
	f := a.m.AllocFast()
	if f == mem.NilFrame {
		a.m.DeniedPromotion()
		return
	}
	a.m.Promote(v, vpn, f)
}

// Tick implements MigrationPolicy: poison a fresh random sample.
func (a *AutoNUMA) Tick(v *sim.Env) {
	table := a.m.Table()
	rng := a.m.Rand()
	for i := 0; i < a.SampleSize; i++ {
		vpn := pagetable.VPN(rng.Intn(table.Pages()))
		if table.PTE(vpn).Mapped() {
			a.poisoned[vpn] = true
		}
	}
}

// Static never migrates: the do-nothing baseline that shows what the
// cold-start placement costs.
type Static struct{}

// Name implements MigrationPolicy.
func (Static) Name() string { return "static" }

// Attach implements MigrationPolicy.
func (Static) Attach(m *Manager) {}

// Placed implements MigrationPolicy.
func (Static) Placed(v *sim.Env, vpn pagetable.VPN, f mem.FrameID) {}

// Poisoned implements MigrationPolicy.
func (Static) Poisoned(vpn pagetable.VPN) bool { return false }

// SlowTouched implements MigrationPolicy.
func (Static) SlowTouched(v *sim.Env, vpn pagetable.VPN) {}

// Tick implements MigrationPolicy.
func (Static) Tick(v *sim.Env) {}

var (
	_ MigrationPolicy = (*TPP)(nil)
	_ MigrationPolicy = (*AutoNUMA)(nil)
	_ MigrationPolicy = Static{}
)
