// Package tiering models the multi-tier memory systems that motivate the
// paper's related work (§II-C): a fast tier (local DRAM) and a slow tier
// (CXL/remote memory), with page *migration* policies moving pages
// between them instead of swapping to a device. Two policies from the
// paper's survey are implemented:
//
//   - TPP (Maruf et al., ASPLOS'23): built directly on Clock's
//     active/inactive lists — demotion targets the slow tier instead of
//     disk, and slow-tier accesses promote pages back, gated by a
//     second-touch filter.
//   - AutoNUMA-like hint-fault sampling (Corbet, LWN 2012): pages are
//     periodically "poisoned" so the next access faults and reveals
//     itself; hot slow-tier pages get promoted. Crucially, as the paper
//     notes, AutoNUMA "lacks mechanisms to demote pages, limiting its
//     performance in contexts with memory tiering" — this implementation
//     reproduces exactly that failure mode.
//
// All pages are always resident (no swap); the performance question is
// purely which pages sit in the fast tier.
package tiering

import (
	"fmt"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
)

// Tier identifies a memory tier.
type Tier uint8

// The two tiers.
const (
	TierFast Tier = iota // local DRAM
	TierSlow             // CXL/remote memory
)

// Config sizes the tiered system.
type Config struct {
	// FastPages and SlowPages size the tiers; Fast+Slow must cover the
	// workload footprint (no swapping in this model).
	FastPages, SlowPages int
	// FastAccess and SlowAccess are per-page-touch costs; the paper's
	// ZRAM latencies (~tens of µs) are representative of the slow tier.
	FastAccess, SlowAccess sim.Duration
	// MigrateCost is the CPU cost of moving one page between tiers.
	MigrateCost sim.Duration
	// HintFaultCost is the trap cost of a poisoned-PTE access
	// (AutoNUMA-style sampling).
	HintFaultCost sim.Duration
	// FreeTarget is how many fast-tier frames the demotion path tries to
	// keep free (the promotion headroom watermark).
	FreeTarget int
}

// DefaultConfig returns a configuration scaled like the swap experiments:
// slow-tier touches cost ~20 µs, migrations ~35 µs.
func DefaultConfig(fast, slow int) Config {
	return Config{
		FastPages:     fast,
		SlowPages:     slow,
		FastAccess:    2 * sim.Microsecond,
		SlowAccess:    20 * sim.Microsecond,
		MigrateCost:   35 * sim.Microsecond,
		HintFaultCost: 4 * sim.Microsecond,
		FreeTarget:    maxInt(8, fast/32),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Counters aggregates tiered-memory activity.
type Counters struct {
	FastHits, SlowHits    uint64
	Promotions, Demotions uint64
	HintFaults            uint64
	PromotionsDenied      uint64 // no fast frame available
}

// MigrationPolicy decides page placement between tiers.
type MigrationPolicy interface {
	// Name identifies the policy.
	Name() string
	// Attach binds to the manager before use.
	Attach(m *Manager)
	// Placed informs the policy that vpn was placed in frame f (initial
	// population or migration).
	Placed(v *sim.Env, vpn pagetable.VPN, f mem.FrameID)
	// SlowTouched is called when a slow-tier page is touched and the
	// touch is visible to the policy (always for TPP's NUMA-hinting;
	// only on poisoned pages for sampling policies). The policy may
	// promote.
	SlowTouched(v *sim.Env, vpn pagetable.VPN)
	// Tick performs periodic background work (scans, demotions).
	Tick(v *sim.Env)
	// Poisoned reports whether the policy wants hint faults for vpn's
	// next access (sampling policies).
	Poisoned(vpn pagetable.VPN) bool
}

// Manager is the tiered-memory manager: one page table whose pages are
// all resident, split across a fast and a slow region of one frame array.
type Manager struct {
	cfg   Config
	table *pagetable.Table
	memry *mem.Memory // frames [0,FastPages) fast, rest slow
	pol   MigrationPolicy
	rng   *sim.RNG

	counters Counters
}

// New builds a manager for a footprint of footprintPages, populating
// pages in address order: the first FastPages land in the fast tier, the
// rest in the slow tier (the cold-start placement tiering systems face).
func New(cfg Config, table *pagetable.Table, pol MigrationPolicy, rng *sim.RNG) *Manager {
	if cfg.FastPages <= 0 || cfg.SlowPages < 0 {
		panic("tiering: invalid tier sizes")
	}
	m := &Manager{
		cfg:   cfg,
		table: table,
		memry: mem.New(cfg.FastPages + cfg.SlowPages),
		pol:   pol,
		rng:   rng,
	}
	pol.Attach(m)
	return m
}

// Populate makes every mapped page resident, fast tier first.
func (m *Manager) Populate(v *sim.Env) {
	placed := 0
	for vpn := pagetable.VPN(0); int(vpn) < m.table.Pages(); vpn++ {
		if !m.table.PTE(vpn).Mapped() {
			continue
		}
		f := m.memry.Alloc()
		if f == mem.NilFrame {
			panic(fmt.Sprintf("tiering: footprint exceeds tier capacity at page %d", placed))
		}
		m.table.InsertPrefetch(vpn, f)
		m.memry.Frame(f).VPN = int64(vpn)
		m.pol.Placed(v, vpn, f)
		placed++
	}
}

// TierOf reports which tier frame f belongs to.
func (m *Manager) TierOf(f mem.FrameID) Tier {
	if int(f) < m.cfg.FastPages {
		return TierFast
	}
	return TierSlow
}

// Config exposes the configuration.
func (m *Manager) Config() Config { return m.cfg }

// Table exposes the page table.
func (m *Manager) Table() *pagetable.Table { return m.table }

// Mem exposes the frame array.
func (m *Manager) Mem() *mem.Memory { return m.memry }

// Rand exposes the policy RNG stream.
func (m *Manager) Rand() *sim.RNG { return m.rng }

// Counters returns activity counters.
func (m *Manager) Counters() Counters { return m.counters }

// FastHitRatio reports the fraction of touches served by the fast tier.
func (m *Manager) FastHitRatio() float64 {
	total := m.counters.FastHits + m.counters.SlowHits
	if total == 0 {
		return 0
	}
	return float64(m.counters.FastHits) / float64(total)
}

// Touch performs one page access, charging the tier-dependent cost and
// routing visibility to the policy (hint fault on poisoned pages, always
// for slow-tier touches).
func (m *Manager) Touch(v *sim.Env, vpn pagetable.VPN, write bool) {
	f, ok := m.table.Walk(vpn, write)
	if !ok {
		panic("tiering: page not resident (all pages should be populated)")
	}
	if m.pol.Poisoned(vpn) {
		m.counters.HintFaults++
		v.Charge(m.cfg.HintFaultCost)
	}
	if m.TierOf(f) == TierFast {
		m.counters.FastHits++
		v.Charge(m.cfg.FastAccess)
		return
	}
	m.counters.SlowHits++
	v.Charge(m.cfg.SlowAccess)
	m.pol.SlowTouched(v, vpn)
}

// migrate moves vpn from its current frame to dst, charging the copy.
func (m *Manager) migrate(v *sim.Env, vpn pagetable.VPN, dst mem.FrameID) {
	src, ok := m.table.Walk(vpn, false)
	if !ok {
		panic("tiering: migrating non-resident page")
	}
	// Preserve the A bit across migration; Walk just set it, so clear it
	// back if it was clear... migration itself is not an access, but the
	// Walk above set A. Policies scanning A bits tolerate this small
	// inaccuracy (real migration also touches the PTE).
	m.table.Evict(vpn, pagetable.NilSwap)
	srcFr := m.memry.Frame(src)
	srcFr.VPN = -1
	m.memry.Free(src)
	m.table.InsertPrefetch(vpn, dst)
	m.memry.Frame(dst).VPN = int64(vpn)
	v.Charge(m.cfg.MigrateCost)
}

// Promote moves vpn into frame fastFrame (caller supplies a free fast
// frame).
func (m *Manager) Promote(v *sim.Env, vpn pagetable.VPN, fastFrame mem.FrameID) {
	if m.TierOf(fastFrame) != TierFast {
		panic("tiering: promotion target not in fast tier")
	}
	m.counters.Promotions++
	m.migrate(v, vpn, fastFrame)
}

// Demote moves vpn into frame slowFrame.
func (m *Manager) Demote(v *sim.Env, vpn pagetable.VPN, slowFrame mem.FrameID) {
	if m.TierOf(slowFrame) != TierSlow {
		panic("tiering: demotion target not in slow tier")
	}
	m.counters.Demotions++
	m.migrate(v, vpn, slowFrame)
}

// AllocFast returns a free fast-tier frame or NilFrame. The shared
// allocator hands out fast frames first, so any free frame below
// FastPages qualifies; we scan the free list via Alloc/rollback.
func (m *Manager) AllocFast() mem.FrameID {
	f := m.memry.Alloc()
	if f == mem.NilFrame {
		return mem.NilFrame
	}
	if m.TierOf(f) == TierFast {
		return f
	}
	m.memry.Free(f)
	return mem.NilFrame
}

// AllocSlow returns a free slow-tier frame or NilFrame.
func (m *Manager) AllocSlow() mem.FrameID {
	// The allocator prefers low (fast) frames; to find a slow frame we
	// may need to set aside fast ones temporarily.
	var parked []mem.FrameID
	var out mem.FrameID = mem.NilFrame
	for {
		f := m.memry.Alloc()
		if f == mem.NilFrame {
			break
		}
		if m.TierOf(f) == TierSlow {
			out = f
			break
		}
		parked = append(parked, f)
	}
	for _, f := range parked {
		m.memry.Free(f)
	}
	return out
}

// DeniedPromotion records a promotion that could not find fast space.
func (m *Manager) DeniedPromotion() { m.counters.PromotionsDenied++ }
