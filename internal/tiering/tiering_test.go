package tiering

import (
	"testing"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
)

// rig builds a tiered system over a mapped footprint.
func rig(t *testing.T, fast, slow, footprint int, pol MigrationPolicy, seed uint64) (*Manager, *sim.Engine) {
	t.Helper()
	regions := (footprint + pagetable.PTEsPerRegion - 1) / pagetable.PTEsPerRegion
	table := pagetable.New(regions)
	table.MapRange(0, footprint, false)
	// Keep a little slow-tier slack beyond the footprint: migration needs
	// a free destination frame, as in real tiered systems.
	if fast+slow == footprint {
		slow += 16
	}
	m := New(DefaultConfig(fast, slow), table, pol, sim.NewRNG(seed))
	return m, sim.NewEngine(4)
}

// driveZipf touches pages with zipfian skew for n accesses, running the
// policy tick periodically.
func driveZipf(e *sim.Engine, m *Manager, footprint, n int, seed uint64) error {
	e.Spawn("app", false, func(v *sim.Env) {
		m.Populate(v)
		// Scrambled: hot pages scatter across the address space, so the
		// address-ordered cold-start placement strands hot pages in the
		// slow tier — the situation migration policies exist for.
		zipf := workload.NewScrambledZipfian(int64(footprint), 0.9)
		rng := sim.NewRNG(seed)
		for i := 0; i < n; i++ {
			m.Touch(v, pagetable.VPN(zipf.Next(rng)), rng.Bool(0.2))
			if i%256 == 0 {
				m.pol.Tick(v)
			}
		}
	})
	return e.Run()
}

func TestPopulateFillsFastFirst(t *testing.T) {
	m, e := rig(t, 64, 64, 100, Static{}, 1)
	e.Spawn("app", false, func(v *sim.Env) { m.Populate(v) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	fast, slow := 0, 0
	for vpn := pagetable.VPN(0); vpn < 100; vpn++ {
		f, ok := m.Table().Walk(vpn, false)
		if !ok {
			t.Fatalf("page %d not resident", vpn)
		}
		if m.TierOf(f) == TierFast {
			fast++
		} else {
			slow++
		}
	}
	if fast != 64 || slow != 36 {
		t.Fatalf("fast=%d slow=%d, want 64/36", fast, slow)
	}
}

func TestPopulateOverflowPanics(t *testing.T) {
	m, e := rig(t, 8, 8, 32, Static{}, 1)
	e.Spawn("app", false, func(v *sim.Env) { m.Populate(v) })
	if err := e.Run(); err == nil {
		t.Fatal("expected error: footprint exceeds capacity")
	}
}

func TestSlowTouchesCostMore(t *testing.T) {
	m, e := rig(t, 16, 64, 64, Static{}, 1)
	var fastTime, slowTime sim.Duration
	e.Spawn("app", false, func(v *sim.Env) {
		m.Populate(v)
		start := v.Proc().CPUTime()
		m.Touch(v, 0, false) // fast tier
		fastTime = v.Proc().CPUTime() - start
		start = v.Proc().CPUTime()
		m.Touch(v, 50, false) // slow tier
		slowTime = v.Proc().CPUTime() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if slowTime <= fastTime {
		t.Fatalf("slow touch (%v) not costlier than fast (%v)", slowTime, fastTime)
	}
}

func TestTPPPromotesHotSlowPages(t *testing.T) {
	m, e := rig(t, 32, 96, 128, NewTPP(), 1)
	hot := pagetable.VPN(100) // starts in the slow tier
	e.Spawn("app", false, func(v *sim.Env) {
		m.Populate(v)
		for i := 0; i < 10; i++ {
			m.Touch(v, hot, false)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Table().Walk(hot, false)
	if m.TierOf(f) != TierFast {
		t.Fatal("hot slow page was not promoted")
	}
	if m.Counters().Promotions == 0 {
		t.Fatal("no promotions counted")
	}
}

func TestTPPSecondTouchFilter(t *testing.T) {
	pol := NewTPP()
	m, e := rig(t, 32, 96, 128, pol, 1)
	oneshot := pagetable.VPN(110)
	e.Spawn("app", false, func(v *sim.Env) {
		m.Populate(v)
		m.Touch(v, oneshot, false) // single touch: must NOT promote
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	f, _ := m.Table().Walk(oneshot, false)
	if m.TierOf(f) != TierSlow {
		t.Fatal("single-touch page promoted despite second-touch filter")
	}
}

func TestTPPDemotesColdToMakeRoom(t *testing.T) {
	m, e := rig(t, 32, 96, 128, NewTPP(), 1)
	if err := driveZipf(e, m, 128, 20000, 7); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.Demotions == 0 {
		t.Fatal("TPP never demoted despite fast-tier pressure")
	}
	if c.Promotions == 0 {
		t.Fatal("TPP never promoted")
	}
}

func TestTPPImprovesFastHitRatioOverStatic(t *testing.T) {
	run := func(pol MigrationPolicy) float64 {
		m, e := rig(t, 32, 96, 128, pol, 1)
		if err := driveZipf(e, m, 128, 30000, 7); err != nil {
			t.Fatal(err)
		}
		return m.FastHitRatio()
	}
	static := run(Static{})
	tpp := run(NewTPP())
	if tpp <= static {
		t.Fatalf("TPP hit ratio %.3f not above static %.3f", tpp, static)
	}
}

// The paper's §II-C criticism: AutoNUMA cannot demote, so once the fast
// tier is full its promotions stop and its hit ratio stalls below TPP's.
func TestAutoNUMAStallsWithoutDemotion(t *testing.T) {
	runC := func(pol MigrationPolicy) (float64, Counters) {
		m, e := rig(t, 32, 96, 128, pol, 1)
		if err := driveZipf(e, m, 128, 30000, 7); err != nil {
			t.Fatal(err)
		}
		return m.FastHitRatio(), m.Counters()
	}
	anRatio, anC := runC(NewAutoNUMA())
	tppRatio, _ := runC(NewTPP())
	if anC.Demotions != 0 {
		t.Fatal("autonuma must never demote")
	}
	if anC.PromotionsDenied == 0 {
		t.Fatal("autonuma should hit the full fast tier and stall")
	}
	if tppRatio <= anRatio {
		t.Fatalf("TPP (%.3f) should beat AutoNUMA (%.3f) by demoting", tppRatio, anRatio)
	}
}

func TestAutoNUMAHintFaultsCharged(t *testing.T) {
	pol := NewAutoNUMA()
	m, e := rig(t, 32, 96, 128, pol, 1)
	if err := driveZipf(e, m, 128, 5000, 3); err != nil {
		t.Fatal(err)
	}
	if m.Counters().HintFaults == 0 {
		t.Fatal("no hint faults recorded")
	}
}

func TestMigrationConservation(t *testing.T) {
	// Every mapped page stays resident across arbitrary migration churn.
	m, e := rig(t, 32, 96, 128, NewTPP(), 5)
	if err := driveZipf(e, m, 128, 20000, 11); err != nil {
		t.Fatal(err)
	}
	for vpn := pagetable.VPN(0); vpn < 128; vpn++ {
		if _, ok := m.Table().Walk(vpn, false); !ok {
			t.Fatalf("page %d lost during migration", vpn)
		}
	}
	if m.Table().PresentPages() != 128 {
		t.Fatalf("present = %d, want 128", m.Table().PresentPages())
	}
	if m.Mem().UsedPages() != 128 {
		t.Fatalf("frames used = %d, want 128", m.Mem().UsedPages())
	}
}

func TestCountersConsistent(t *testing.T) {
	m, e := rig(t, 32, 96, 128, NewTPP(), 5)
	if err := driveZipf(e, m, 128, 10000, 13); err != nil {
		t.Fatal(err)
	}
	c := m.Counters()
	if c.FastHits+c.SlowHits != 10000 {
		t.Fatalf("hits %d+%d != touches 10000", c.FastHits, c.SlowHits)
	}
	if r := m.FastHitRatio(); r <= 0 || r > 1 {
		t.Fatalf("hit ratio %v out of range", r)
	}
}
