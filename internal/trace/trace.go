// Package trace analyzes page-access traces offline: exact LRU stack
// distances (Mattson's algorithm with a Fenwick tree, O(N log N)),
// miss-ratio curves for all cache sizes at once, and Denning working-set
// estimates. It complements the online simulator: the simulator answers
// "what does this policy do", the trace analysis answers "what would an
// ideal LRU do", which bounds how much room a policy has.
package trace

import (
	"sort"

	"mglrusim/internal/pagetable"
)

// fenwick is a binary indexed tree over access positions.
type fenwick struct {
	n    int
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{n: n, tree: make([]int, n+1)} }

func (f *fenwick) grow(n int) {
	if n <= f.n {
		return
	}
	nt := make([]int, n+1)
	// Rebuild from scratch is O(n log n); instead re-add the stored
	// values. Extract point values first.
	vals := make([]int, f.n+1)
	for i := 1; i <= f.n; i++ {
		vals[i] = f.rangeSum(i, i)
	}
	f.tree = nt
	oldN := f.n
	f.n = n
	for i := 1; i <= oldN; i++ {
		if vals[i] != 0 {
			f.add(i, vals[i])
		}
	}
}

func (f *fenwick) add(i, delta int) {
	for ; i <= f.n; i += i & (-i) {
		f.tree[i] += delta
	}
}

func (f *fenwick) prefix(i int) int {
	s := 0
	if i > f.n {
		i = f.n
	}
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

func (f *fenwick) rangeSum(lo, hi int) int {
	if lo > hi {
		return 0
	}
	return f.prefix(hi) - f.prefix(lo-1)
}

// Analyzer consumes a stream of page accesses and accumulates reuse
// statistics. Not safe for concurrent use.
type Analyzer struct {
	t        int // access counter (1-based positions)
	lastPos  map[pagetable.VPN]int
	lastSeen map[pagetable.VPN]int // last access index for gap stats
	bit      *fenwick

	// distCount[d] = number of accesses with stack distance d
	// (d = number of distinct pages touched since the previous access
	// to the same page). Cold (first) accesses are counted separately.
	distCount []int
	cold      int

	// gapCount[g] accumulates inter-arrival gaps for working-set math.
	gaps []int
}

// NewAnalyzer creates an analyzer with a capacity hint of n accesses.
func NewAnalyzer(n int) *Analyzer {
	if n < 64 {
		n = 64
	}
	return &Analyzer{
		lastPos:  make(map[pagetable.VPN]int),
		lastSeen: make(map[pagetable.VPN]int),
		bit:      newFenwick(n),
	}
}

// Add feeds one page access.
func (a *Analyzer) Add(vpn pagetable.VPN) {
	a.t++
	if a.t > a.bit.n {
		a.bit.grow(a.bit.n * 2)
	}
	if p, ok := a.lastPos[vpn]; ok {
		// Stack distance = distinct pages accessed in (p, t).
		d := a.bit.rangeSum(p+1, a.t-1)
		for d >= len(a.distCount) {
			a.distCount = append(a.distCount, make([]int, d-len(a.distCount)+64)...)
		}
		a.distCount[d]++
		a.bit.add(p, -1)
		a.gaps = append(a.gaps, a.t-p)
	} else {
		a.cold++
	}
	a.bit.add(a.t, 1)
	a.lastPos[vpn] = a.t
	a.lastSeen[vpn] = a.t
}

// Accesses reports total accesses fed.
func (a *Analyzer) Accesses() int { return a.t }

// Unique reports distinct pages observed.
func (a *Analyzer) Unique() int { return len(a.lastPos) }

// ColdMisses reports first-touch accesses.
func (a *Analyzer) ColdMisses() int { return a.cold }

// MissRatio returns the fraction of accesses that would miss in a
// fully-associative LRU cache of the given page capacity (including cold
// misses).
func (a *Analyzer) MissRatio(capacity int) float64 {
	if a.t == 0 {
		return 0
	}
	hits := 0
	for d := 0; d < capacity && d < len(a.distCount); d++ {
		hits += a.distCount[d]
	}
	return float64(a.t-hits) / float64(a.t)
}

// Misses returns the exact number of accesses that would miss in a
// fully-associative LRU cache of the given page capacity, including cold
// misses — the integer Mattson prediction the differential verification
// harness compares real policies against bit-for-bit.
func (a *Analyzer) Misses(capacity int) int {
	hits := 0
	for d := 0; d < capacity && d < len(a.distCount); d++ {
		hits += a.distCount[d]
	}
	return a.t - hits
}

// MissRatioCurve evaluates MissRatio at each capacity.
func (a *Analyzer) MissRatioCurve(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = a.MissRatio(c)
	}
	return out
}

// DistancePercentile returns the stack distance below which the given
// fraction of reuses fall (reuses only; cold misses excluded).
func (a *Analyzer) DistancePercentile(p float64) int {
	total := 0
	for _, c := range a.distCount {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := int(p * float64(total))
	run := 0
	for d, c := range a.distCount {
		run += c
		if run >= target {
			return d
		}
	}
	return len(a.distCount)
}

// WorkingSet estimates Denning's average working-set size for a window
// of w accesses: the mean number of distinct pages touched in any window
// of length w, computed from inter-arrival gaps (exact up to boundary
// effects at the trace's ends).
func (a *Analyzer) WorkingSet(w int) float64 {
	if a.t == 0 || w <= 0 {
		return 0
	}
	// A page contributes to the working set at time t iff its most
	// recent access is within the last w accesses. Integrating over t:
	// each access contributes min(gap_to_next_access, w); the final
	// access of each page contributes min(T - last + ... , w) ≈ min(w,
	// T-last+1).
	sum := 0
	for _, g := range a.gaps {
		if g < w {
			sum += g
		} else {
			sum += w
		}
	}
	for _, last := range a.lastSeen {
		tail := a.t - last + 1
		if tail < w {
			sum += tail
		} else {
			sum += w
		}
	}
	return float64(sum) / float64(a.t)
}

// WorkingSetCurve evaluates WorkingSet at each window size.
func (a *Analyzer) WorkingSetCurve(windows []int) []float64 {
	out := make([]float64, len(windows))
	for i, w := range windows {
		out[i] = a.WorkingSet(w)
	}
	return out
}

// HotPages returns the n most frequently accessed pages with their
// access counts, most popular first.
func (a *Analyzer) HotPages(n int, counts map[pagetable.VPN]int) []HotPage {
	// counts is supplied by the caller (the analyzer does not retain
	// per-page counts itself to stay lean); see CountAccesses.
	out := make([]HotPage, 0, len(counts))
	for vpn, c := range counts {
		out = append(out, HotPage{VPN: vpn, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].VPN < out[j].VPN
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// HotPage pairs a page with its access count.
type HotPage struct {
	VPN   pagetable.VPN
	Count int
}
