package trace

import (
	"testing"
	"testing/quick"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
)

func feed(a *Analyzer, vpns ...pagetable.VPN) {
	for _, v := range vpns {
		a.Add(v)
	}
}

func TestColdMissesOnly(t *testing.T) {
	a := NewAnalyzer(16)
	feed(a, 1, 2, 3, 4)
	if a.ColdMisses() != 4 || a.Unique() != 4 || a.Accesses() != 4 {
		t.Fatalf("cold=%d unique=%d", a.ColdMisses(), a.Unique())
	}
	if mr := a.MissRatio(100); mr != 1.0 {
		t.Fatalf("all-cold miss ratio = %v", mr)
	}
}

func TestStackDistanceKnownSequence(t *testing.T) {
	a := NewAnalyzer(16)
	// 1 2 3 1: reuse of 1 has distance 2 (pages 2, 3 in between).
	feed(a, 1, 2, 3, 1)
	// Capacity 2 misses the reuse, capacity 3 hits it.
	if mr := a.MissRatio(2); mr != 1.0 {
		t.Fatalf("cap-2 miss ratio = %v, want 1.0", mr)
	}
	if mr := a.MissRatio(3); mr != 0.75 {
		t.Fatalf("cap-3 miss ratio = %v, want 0.75 (one hit of four)", mr)
	}
}

func TestImmediateReuseDistanceZero(t *testing.T) {
	a := NewAnalyzer(16)
	feed(a, 5, 5, 5)
	// Two reuses at distance 0: any capacity >= 1 hits them.
	if mr := a.MissRatio(1); mr-1.0/3.0 > 1e-12 || mr < 1.0/3.0-1e-12 {
		t.Fatalf("miss ratio = %v, want 1/3", mr)
	}
}

func TestMissRatioMonotoneInCapacity(t *testing.T) {
	a := NewAnalyzer(64)
	rng := sim.NewRNG(1)
	for i := 0; i < 5000; i++ {
		a.Add(pagetable.VPN(rng.Intn(200)))
	}
	prev := 1.1
	for _, c := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		mr := a.MissRatio(c)
		if mr > prev+1e-12 {
			t.Fatalf("miss ratio not monotone at capacity %d: %v > %v", c, mr, prev)
		}
		prev = mr
	}
	// At capacity >= unique pages, only cold misses remain.
	want := float64(a.ColdMisses()) / float64(a.Accesses())
	if got := a.MissRatio(100000); got != want {
		t.Fatalf("asymptotic miss ratio = %v, want %v", got, want)
	}
}

// Property: the analyzer's miss ratio matches a brute-force LRU
// simulation for random small traces.
func TestMissRatioMatchesBruteForceLRUProperty(t *testing.T) {
	f := func(raw []uint8, capRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		capacity := int(capRaw)%8 + 1
		a := NewAnalyzer(len(raw))
		// Brute-force LRU.
		var stack []pagetable.VPN
		misses := 0
		for _, r := range raw {
			vpn := pagetable.VPN(r % 16)
			a.Add(vpn)
			found := -1
			for i, v := range stack {
				if v == vpn {
					found = i
					break
				}
			}
			if found < 0 {
				misses++
				stack = append([]pagetable.VPN{vpn}, stack...)
				if len(stack) > capacity {
					stack = stack[:capacity]
				}
			} else {
				stack = append(stack[:found], stack[found+1:]...)
				stack = append([]pagetable.VPN{vpn}, stack...)
			}
		}
		want := float64(misses) / float64(len(raw))
		got := a.MissRatio(capacity)
		return got > want-1e-9 && got < want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetBounds(t *testing.T) {
	a := NewAnalyzer(64)
	rng := sim.NewRNG(2)
	for i := 0; i < 2000; i++ {
		a.Add(pagetable.VPN(rng.Intn(50)))
	}
	ws1 := a.WorkingSet(1)
	if ws1 < 0.99 || ws1 > 1.01 {
		t.Fatalf("W(1) = %v, want ~1", ws1)
	}
	wsBig := a.WorkingSet(100000)
	if wsBig > float64(a.Unique())+1e-9 {
		t.Fatalf("W(inf) = %v exceeds unique %d", wsBig, a.Unique())
	}
	// Monotone in window size.
	prev := 0.0
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		ws := a.WorkingSet(w)
		if ws < prev-1e-9 {
			t.Fatalf("working set not monotone at %d", w)
		}
		prev = ws
	}
}

func TestWorkingSetSequentialStream(t *testing.T) {
	a := NewAnalyzer(64)
	for i := 0; i < 1000; i++ {
		a.Add(pagetable.VPN(i)) // no reuse
	}
	// Every window of w accesses holds exactly w distinct pages
	// (modulo trace-end boundary).
	ws := a.WorkingSet(10)
	if ws < 9 || ws > 10 {
		t.Fatalf("W(10) on sequential = %v, want ~10", ws)
	}
}

func TestDistancePercentile(t *testing.T) {
	a := NewAnalyzer(64)
	// Loop over 10 pages repeatedly: every reuse distance is 9.
	for pass := 0; pass < 20; pass++ {
		for p := 0; p < 10; p++ {
			a.Add(pagetable.VPN(p))
		}
	}
	if d := a.DistancePercentile(0.5); d != 9 {
		t.Fatalf("median distance = %d, want 9", d)
	}
}

func TestFenwickGrowPreservesCounts(t *testing.T) {
	a := NewAnalyzer(64) // force growth with >64 accesses
	rng := sim.NewRNG(3)
	var ref []pagetable.VPN
	for i := 0; i < 500; i++ {
		v := pagetable.VPN(rng.Intn(30))
		ref = append(ref, v)
		a.Add(v)
	}
	// Compare against a fresh analyzer with exact capacity.
	b := NewAnalyzer(500)
	for _, v := range ref {
		b.Add(v)
	}
	for _, c := range []int{1, 5, 10, 20, 40} {
		if a.MissRatio(c) != b.MissRatio(c) {
			t.Fatalf("growth changed results at capacity %d", c)
		}
	}
}

func TestHotPages(t *testing.T) {
	a := NewAnalyzer(16)
	counts := map[pagetable.VPN]int{1: 5, 2: 9, 3: 2}
	hot := a.HotPages(2, counts)
	if len(hot) != 2 || hot[0].VPN != 2 || hot[1].VPN != 1 {
		t.Fatalf("hot = %+v", hot)
	}
}
