package vmm

import (
	"strings"
	"testing"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/policy/mglru"
	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
	"mglrusim/internal/telemetry"
)

// newAuditRig is newRig with the invariant auditor enabled at a tight
// scan cadence.
func newAuditRig(frames, mappedPages int, pol policy.Policy, seed uint64) *rig {
	eng := sim.NewEngine(4)
	rng := sim.NewRNG(seed)
	memory := mem.New(frames)
	regions := (mappedPages + pagetable.PTEsPerRegion - 1) / pagetable.PTEsPerRegion
	table := pagetable.New(regions)
	table.MapRange(0, mappedPages, false)
	dev := swap.NewSSD(swap.SSDConfig{
		ReadLatency: 100 * sim.Microsecond, WriteLatency: 100 * sim.Microsecond,
		QueueDepth: 8, MaxDirtyWrites: 32,
	}, eng, rng.Stream(1))
	cfg := DefaultConfig()
	cfg.Audit = true
	cfg.AuditEvery = 4
	mgr := New(cfg, eng, memory, table, dev, pol, rng.Stream(2))
	return &rig{eng: eng, m: mgr, mem: memory}
}

// thrash drives enough faults through the rig that reclaim, readahead,
// and (for MG-LRU) aging all fire.
func thrash(r *rig, t *testing.T, pages int) {
	t.Helper()
	r.run(t, func(v *sim.Env) {
		for round := 0; round < 4; round++ {
			for i := 0; i < pages; i++ {
				r.m.Touch(v, pagetable.VPN(i), i%2 == 0)
			}
		}
	})
}

// TestAuditedTrialClean: a full thrashing run under each policy family
// engages the auditor (checkpoints and full scans happen) and raises no
// violations — the production fault/evict/readahead/aging paths uphold
// every invariant.
func TestAuditedTrialClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  func() policy.Policy
	}{
		{"mglru", func() policy.Policy { return mglru.New(mglru.Default()) }},
		{"clock", func() policy.Policy { return clock.New(clock.DefaultConfig()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := newAuditRig(64, 256, tc.pol(), 7)
			thrash(r, t, 256)
			aud := r.m.Auditor()
			if aud == nil {
				t.Fatal("auditor not installed despite cfg.Audit")
			}
			if aud.Checkpoints() == 0 {
				t.Fatal("auditor saw no checkpoints during a thrashing run")
			}
			if err := r.m.AuditErr(); err != nil {
				t.Fatalf("audited trial flagged: %v", err)
			}
		})
	}
}

// TestAuditCatchesInjectedCorruption corrupts a live audited system —
// aliasing one page's frame into a second PTE, the double-mapping bug —
// and asserts the final scan refuses to pass it.
func TestAuditCatchesInjectedCorruption(t *testing.T) {
	r := newAuditRig(64, 256, mglru.New(mglru.Default()), 7)
	thrash(r, t, 256)

	var victim pagetable.VPN = -1
	for i := 0; i < 256; i++ {
		if r.m.table.PTE(pagetable.VPN(i)).Present() {
			victim = pagetable.VPN(i)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no resident page to corrupt")
	}
	// Alias the next non-present page onto the victim's frame.
	for i := 0; i < 256; i++ {
		vpn := pagetable.VPN(i)
		if !r.m.table.PTE(vpn).Present() {
			r.m.table.Insert(vpn, r.m.table.PTE(victim).Frame, false)
			break
		}
	}
	err := r.m.AuditErr()
	if err == nil {
		t.Fatal("injected double mapping not detected")
	}
	if !strings.Contains(err.Error(), "owned by two VPNs") {
		t.Fatalf("unexpected violation set: %v", err)
	}
}

// TestAuditViolationReachesFlightDump: with a tracer attached, an
// invariant violation must land in the flight-recorder dump directly —
// as an instant in the ring and as the full diff in the notes — without
// going through the trial-error path at all. This is the auditor→telemetry
// hook's contract: flight.txt carries the breached invariant even when
// the trial dies before AuditErr runs.
func TestAuditViolationReachesFlightDump(t *testing.T) {
	r := newAuditRig(64, 256, mglru.New(mglru.Default()), 7)
	tr := telemetry.New(telemetry.Config{})
	tr.Bind(r.eng.Now)
	r.m.SetTracer(tr)
	thrash(r, t, 256)

	var victim pagetable.VPN = -1
	for i := 0; i < 256; i++ {
		if r.m.table.PTE(pagetable.VPN(i)).Present() {
			victim = pagetable.VPN(i)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no resident page to corrupt")
	}
	for i := 0; i < 256; i++ {
		vpn := pagetable.VPN(i)
		if !r.m.table.PTE(vpn).Present() {
			r.m.table.Insert(vpn, r.m.table.PTE(victim).Frame, false)
			break
		}
	}
	// Final scan detects the corruption; the reporter fires synchronously,
	// BEFORE anyone inspects the returned error.
	if err := r.m.AuditErr(); err == nil {
		t.Fatal("injected double mapping not detected")
	}
	var sb strings.Builder
	if err := tr.WriteFlight(&sb, "test dump"); err != nil {
		t.Fatal(err)
	}
	dump := sb.String()
	if !strings.Contains(dump, "owned by two VPNs") {
		t.Fatalf("flight dump missing the invariant diff:\n%s", dump)
	}
	if !strings.Contains(dump, "audit-violation") {
		t.Fatalf("flight dump missing the audit-violation instant:\n%s", dump)
	}
}
