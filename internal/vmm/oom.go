package vmm

import (
	"fmt"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
)

// OOMError is panicked when the swap area is exhausted and the OOM reaper
// can free nothing — every slot belongs to the faulting region itself or
// the area is degenerately small. The experiment harness classifies it as
// a transient, retryable trial failure.
type OOMError struct {
	At   sim.Time
	VPN  pagetable.VPN // the page whose eviction needed a slot
	Used int           // slots in use at the time
}

// Error implements error.
func (e *OOMError) Error() string {
	return fmt.Sprintf("vmm: swap exhausted at %v evicting vpn %d (%d slots in use) and the OOM reaper found no victim", e.At, e.VPN, e.Used)
}

// oomKill models the kernel's swap-exhaustion OOM path scaled to this
// simulator's single address space: page-table regions stand in for
// processes. The victim is the region with the highest badness score —
// resident plus swapped pages, the kernel's rss + swapents — among
// regions that actually hold swap slots; ties break toward the lowest
// region index so victim selection is deterministic. The victim's swap
// copies are then reaped: slots freed for reuse, PTE swap references and
// shadow entries dropped, so the killed region's pages refault later as
// zero-fill minors (the data loss an OOM kill is).
//
// Reaping is pure bookkeeping (no yields), so the caller's eviction
// continues atomically with a refilled area.
func (m *Manager) oomKill(v *sim.Env, evicting pagetable.VPN) {
	victim, reapable := -1, 0
	best := -1
	regions := m.table.Regions()
	for r := 0; r < regions; r++ {
		// The table maintains per-region swap-slot counts incrementally,
		// so badness scoring is O(regions), not O(pages).
		swapped := m.table.RegionSwapped(r)
		if swapped == 0 {
			continue // nothing to reap from this region
		}
		score := m.table.RegionPresent(r) + swapped
		if score > best {
			best, victim, reapable = score, r, swapped
		}
	}
	if victim < 0 {
		if m.tr != nil {
			// Last words for the flight recorder: the panic unwinds to the
			// engine, and the harness dumps the ring with this as the newest
			// event.
			m.tr.Instant(m.tr.Track(v.Proc().Name()), "oom-unreapable", int64(evicting))
		}
		panic(&OOMError{At: v.Now(), VPN: evicting, Used: m.area.InUse()})
	}
	m.counters.OOMKills++
	m.counters.OOMReapedSlots += uint64(reapable)
	if m.tr != nil {
		m.tr.Instant(m.tr.Track(v.Proc().Name()), "oom-kill", int64(victim))
	}
	m.reapRegion(victim)
}

// reapRegion discards every swap copy held by region r.
func (m *Manager) reapRegion(r int) {
	m.table.ReapRegion(r, func(vpn pagetable.VPN, slot int32) {
		m.dev.FreeSlot(slot)
		m.area.Free(slot)
		*m.slotOwner.At(int(slot)) = -1
		if m.shadows.Peek(int(vpn)).valid {
			*m.shadows.At(int(vpn)) = shadowEntry{}
		}
		if m.audit != nil {
			m.audit.Reaped(vpn)
		}
	})
}
