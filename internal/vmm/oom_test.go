package vmm

import (
	"errors"
	"testing"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
)

// newOOMRig is newRig with a capped swap area (and optional audit), so
// swap-area exhaustion is reachable.
func newOOMRig(frames, mappedPages, swapSlots int, audit bool, seed uint64) *rig {
	eng := sim.NewEngine(4)
	rng := sim.NewRNG(seed)
	memory := mem.New(frames)
	regions := (mappedPages + pagetable.PTEsPerRegion - 1) / pagetable.PTEsPerRegion
	table := pagetable.New(regions)
	table.MapRange(0, mappedPages, false)
	dev := swap.NewSSD(swap.SSDConfig{
		ReadLatency: 100 * sim.Microsecond, WriteLatency: 100 * sim.Microsecond,
		QueueDepth: 8, MaxDirtyWrites: 32,
	}, eng, rng.Stream(1))
	cfg := DefaultConfig()
	cfg.SwapSlots = swapSlots
	cfg.Audit = audit
	mgr := New(cfg, eng, memory, table, dev, clock.New(clock.DefaultConfig()), rng.Stream(2))
	return &rig{eng: eng, m: mgr, mem: memory}
}

// TestSwapExhaustionTriggersOOM: 16 frames, a 64-page dirty working set,
// and only 24 swap slots — reclaim must exhaust the area, and the OOM
// model must reap rather than wedge. The run completes, kills are
// counted, and frame accounting survives.
func TestSwapExhaustionTriggersOOM(t *testing.T) {
	r := newOOMRig(16, 64, 24, false, 1)
	r.run(t, func(v *sim.Env) {
		for pass := 0; pass < 4; pass++ {
			for vpn := pagetable.VPN(0); vpn < 64; vpn++ {
				r.m.Touch(v, vpn, true) // dirty: every eviction needs a slot
			}
		}
	})
	c := r.m.Counters()
	if c.OOMKills == 0 {
		t.Fatal("24 slots absorbed a 64-page dirty working set without an OOM kill")
	}
	if c.OOMReapedSlots == 0 {
		t.Fatal("kills recorded but no slots reaped")
	}
	if r.m.ResidentPages() > 16 {
		t.Fatalf("resident %d exceeds memory", r.m.ResidentPages())
	}
	if used := r.mem.UsedPages(); used != r.m.ResidentPages() {
		t.Fatalf("frame accounting mismatch after reaps: used=%d resident=%d", used, r.m.ResidentPages())
	}
}

// TestOOMVictimSelection: the victim must be the region with the highest
// badness (resident + swapped), not the faulting one. Region 0 is touched
// heavily, region 1 lightly; a direct kill must reap region 0 and leave
// region 1's swap copies alone.
func TestOOMVictimSelection(t *testing.T) {
	pages := pagetable.PTEsPerRegion + 64 // region 0 full, region 1 has 64 pages
	r := newOOMRig(64, pages, 0, false, 2)
	r.run(t, func(v *sim.Env) {
		for pass := 0; pass < 2; pass++ {
			for vpn := pagetable.VPN(0); vpn < pagetable.VPN(pages); vpn++ {
				r.m.Touch(v, vpn, true)
			}
		}
		swapped := func(region int) int {
			return r.m.table.RegionSwapped(region)
		}
		before0, before1 := swapped(0), swapped(1)
		if before0 == 0 || before1 == 0 {
			t.Fatalf("setup failed to swap both regions: %d, %d", before0, before1)
		}

		r.m.oomKill(v, pagetable.VPN(pagetable.PTEsPerRegion)) // faulting page lives in region 1
		if got := r.m.Counters().OOMKills; got != 1 {
			t.Fatalf("kills = %d, want 1", got)
		}
		if got := swapped(0); got != 0 {
			t.Fatalf("victim region 0 still holds %d swap copies", got)
		}
		if got := swapped(1); got != before1 {
			t.Fatalf("non-victim region 1 lost swap copies: %d -> %d", before1, got)
		}
		if got := r.m.Counters().OOMReapedSlots; got != uint64(before0) {
			t.Fatalf("reaped %d slots, victim held %d", got, before0)
		}
	})
}

// TestOOMReapSurvivesAudit runs the exhaustion scenario with the
// invariant auditor on: the reaper's bookkeeping (freed slots, cleared
// PTEs, dropped shadows, auditor notification) must leave no dangling
// eviction records or ownership mismatches.
func TestOOMReapSurvivesAudit(t *testing.T) {
	r := newOOMRig(16, 64, 24, true, 3)
	r.run(t, func(v *sim.Env) {
		for pass := 0; pass < 4; pass++ {
			for vpn := pagetable.VPN(0); vpn < 64; vpn++ {
				r.m.Touch(v, vpn, true)
			}
		}
	})
	if r.m.Counters().OOMKills == 0 {
		t.Fatal("scenario did not exercise the OOM path")
	}
}

// TestOOMErrorWhenNothingReapable: a degenerate area too small for even
// one region's working set still makes progress while pages are
// reapable, and panics a typed, retry-classifiable *OOMError only when
// the reaper genuinely finds no victim.
func TestOOMErrorWhenNothingReapable(t *testing.T) {
	eng := sim.NewEngine(4)
	rng := sim.NewRNG(4)
	memory := mem.New(4)
	table := pagetable.New(1)
	table.MapRange(0, 16, false)
	dev := swap.NewSSD(swap.SSDConfig{
		ReadLatency: 100 * sim.Microsecond, WriteLatency: 100 * sim.Microsecond,
		QueueDepth: 8, MaxDirtyWrites: 32,
	}, eng, rng.Stream(1))
	cfg := DefaultConfig()
	cfg.ReadaheadWindow = 0
	mgr := New(cfg, eng, memory, table, dev, clock.New(clock.DefaultConfig()), rng.Stream(2))

	eng.Spawn("app", false, func(v *sim.Env) {
		// With no swapped pages anywhere, exhaustion has no victim: force
		// the direct path.
		mgr.oomKill(v, 0)
	})
	err := eng.Run()
	if err == nil {
		t.Fatal("expected OOMError")
	}
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("error chain lost the typed cause: %v", err)
	}
}
