package vmm

import (
	"testing"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
)

// runSequentialPasses builds a system with the given readahead window and
// drives sequential passes over the mapped range, returning the manager.
func runSequentialPasses(t *testing.T, window, frames, mapped, passes int, seed uint64) *Manager {
	t.Helper()
	eng := sim.NewEngine(4)
	rng := sim.NewRNG(seed)
	cfg := DefaultConfig()
	cfg.ReadaheadWindow = window
	memory := mem.New(frames)
	regions := (mapped + pagetable.PTEsPerRegion - 1) / pagetable.PTEsPerRegion
	table := pagetable.New(regions)
	table.MapRange(0, mapped, false)
	dev := swap.NewSSD(swap.SSDConfig{
		ReadLatency: 100 * sim.Microsecond, WriteLatency: 100 * sim.Microsecond,
		QueueDepth: 8, MaxDirtyWrites: 32,
	}, eng, rng.Stream(1))
	mgr := New(cfg, eng, memory, table, dev, clock.New(clock.DefaultConfig()), rng.Stream(2))
	eng.Spawn("app", false, func(v *sim.Env) {
		for p := 0; p < passes; p++ {
			for vpn := pagetable.VPN(0); vpn < pagetable.VPN(mapped); vpn++ {
				mgr.Touch(v, vpn, false)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return mgr
}

func TestReadaheadPullsClusterNeighbours(t *testing.T) {
	m := runSequentialPasses(t, 8, 32, 64, 4, 1)
	c := m.Counters()
	if c.ReadaheadIn == 0 {
		t.Fatal("readahead never fired on a sequential workload")
	}
	if c.ReadaheadHits == 0 {
		t.Fatal("sequential readahead produced no hits")
	}
	if c.ReadaheadHits < c.ReadaheadWaste {
		t.Fatalf("hits %d < waste %d on a sequential pattern", c.ReadaheadHits, c.ReadaheadWaste)
	}
}

func TestReadaheadReducesMajorFaults(t *testing.T) {
	with := runSequentialPasses(t, 8, 32, 64, 4, 9).Counters().MajorFaults
	without := runSequentialPasses(t, 0, 32, 64, 4, 9).Counters().MajorFaults
	if with >= without {
		t.Fatalf("readahead did not reduce major faults: %d with vs %d without", with, without)
	}
}

func TestReadaheadDisabledWindowZero(t *testing.T) {
	m := runSequentialPasses(t, 0, 32, 64, 3, 2)
	if m.Counters().ReadaheadIn != 0 {
		t.Fatal("window 0 should disable readahead")
	}
}

func TestPrefetchedPagesCarryNoAccessedBit(t *testing.T) {
	m := runSequentialPasses(t, 8, 16, 48, 3, 4)
	for vpn := pagetable.VPN(0); vpn < 48; vpn++ {
		p := m.Table().PTE(vpn)
		if !p.Present() {
			continue
		}
		fr := m.Mem().Frame(p.Frame)
		if fr.Flags&mem.FlagPrefetch != 0 && p.Accessed() {
			t.Errorf("prefetched page %d has A bit set", vpn)
		}
	}
}

func TestReadaheadAccountingConsistent(t *testing.T) {
	m := runSequentialPasses(t, 8, 32, 64, 5, 7)
	c := m.Counters()
	if c.ReadaheadHits+c.ReadaheadWaste > c.ReadaheadIn {
		t.Fatalf("outcomes (%d+%d) exceed prefetches (%d)",
			c.ReadaheadHits, c.ReadaheadWaste, c.ReadaheadIn)
	}
	if m.ResidentPages() != m.Mem().UsedPages() {
		t.Fatal("frame accounting mismatch with readahead")
	}
}
