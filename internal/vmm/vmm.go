// Package vmm is the simulated memory manager: it owns the fault path,
// swap-in/swap-out, watermark-driven background reclaim (kswapd), direct
// reclaim, and the background aging task that MG-LRU's design assumes.
// It implements policy.Kernel, so replacement policies plug in unchanged.
package vmm

import (
	"fmt"

	"mglrusim/internal/check"
	"mglrusim/internal/mem"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/rmap"
	"mglrusim/internal/sim"
	"mglrusim/internal/stats"
	"mglrusim/internal/swap"
	"mglrusim/internal/telemetry"
)

// Config tunes memory-manager behaviour.
type Config struct {
	// MajorFaultOverhead is the CPU cost of trap + handler + PTE fixup
	// for a fault served from swap (excluding device time).
	MajorFaultOverhead sim.Duration
	// MinorFaultOverhead is the CPU cost of a first-touch (zero-fill)
	// fault.
	MinorFaultOverhead sim.Duration
	// ReclaimBatch is how many pages one direct-reclaim burst requests.
	ReclaimBatch int
	// KswapdBatch is how many pages one kswapd burst requests.
	KswapdBatch int
	// AgingPoll is the aging daemon's poll period when idle.
	AgingPoll sim.Duration
	// ProactiveAging makes the aging daemon run a pass every
	// ProactiveInterval even without a request, harvesting accessed bits
	// the way periodic kernel scans do. Zero disables.
	ProactiveInterval sim.Duration
	// ReadaheadWindow is the swap cluster size (the kernel's
	// 2^page_cluster, default 8): a demand fault also pulls in the other
	// swapped-out pages of its aligned slot cluster. Zero disables.
	// Readahead effectiveness depends on slot-layout luck — pages
	// evicted together get adjacent slots — which is a principal source
	// of run-to-run fault-count variation.
	ReadaheadWindow int
	// RMapCost is the reverse-map walk cost model.
	RMapCost rmap.CostModel
	// SwapSlots caps the swap area at this many slots (zero sizes it to
	// the footprint plus slack, which can never fill). A cap makes
	// swap-area exhaustion reachable, which triggers the badness-score
	// OOM-killer model instead of the historical panic.
	SwapSlots int
	// Audit enables the invariant auditor (package check): bookkeeping
	// invariants are asserted at fault-in, eviction, and aging
	// checkpoints. Off by default; when off the only cost is a nil check
	// per checkpoint. The auditor never charges simulated CPU, so
	// enabling it does not change metrics.
	Audit bool
	// AuditEvery overrides the auditor's full-state scan cadence
	// (checkpoints per O(pages) sweep). Zero keeps the auditor default.
	AuditEvery int
}

// DefaultConfig returns calibrated defaults.
func DefaultConfig() Config {
	return Config{
		MajorFaultOverhead: 1500 * sim.Nanosecond,
		MinorFaultOverhead: 800 * sim.Nanosecond,
		ReclaimBatch:       32,
		KswapdBatch:        64,
		AgingPoll:          1 * sim.Millisecond,
		ProactiveInterval:  20 * sim.Millisecond,
		ReadaheadWindow:    8,
		RMapCost:           rmap.DefaultCostModel(),
	}
}

// Counters aggregates fault-path activity for a trial.
type Counters struct {
	MajorFaults    uint64
	MinorFaults    uint64
	SwapIns        uint64
	SwapOuts       uint64
	DirectReclaims uint64
	KswapdBursts   uint64
	Accesses       uint64
	ReadaheadIn    uint64 // pages brought in speculatively by readahead
	ReadaheadHits  uint64 // prefetched pages touched before eviction
	ReadaheadWaste uint64 // prefetched pages evicted untouched
	FileFaults     uint64 // faults served through the file page cache
	FileWritebacks uint64 // dirty file pages written back at eviction (flusher writes live in pagecache.Stats)
	FileAccesses   uint64 // resident (hit) touches of file-backed pages; hit ratio = hits/(hits+FileFaults)
	OOMKills       uint64 // swap-exhaustion OOM victim selections
	OOMReapedSlots uint64 // swap slots reclaimed by the OOM reaper
}

// TotalFaults is the figure the paper plots: demand faults of both kinds.
func (c Counters) TotalFaults() uint64 { return c.MajorFaults + c.MinorFaults }

type shadowEntry struct {
	sh    policy.Shadow
	valid bool
}

// Manager is the simulated memory-management subsystem for one process.
type Manager struct {
	cfg   Config
	eng   *sim.Engine
	memry *mem.Memory
	table *pagetable.Table
	rm    *rmap.Map
	dev   swap.Device
	area  *swap.Area
	pol   policy.Policy
	rng   *sim.RNG

	// Per-VPN metadata is indexed over the whole VA span (holes included),
	// so at full scale it lives in chunked arenas that materialize on
	// first write — O(touched chunks), not O(pages).
	shadows   *mem.Arena[shadowEntry] // per VPN
	versions  *mem.Arena[uint32]      // per VPN dirty-content version
	faultsAt  *mem.Arena[uint32]      // per VPN major-fault counts (analysis tools)
	slotOwner *mem.Arena[int64]       // per swap slot: owning VPN, -1 if unassigned

	kswapdCond sim.Cond
	agingReq   bool

	// Adaptive readahead state, per page-table region (the kernel's
	// swap readahead adapts per VMA): raShift[r] bounds region r's
	// window to 1<<raShift[r], adjusted from recent hit/miss outcomes.
	// Sequential segments keep large windows; randomly accessed ones
	// collapse to zero.
	raShift    []int8
	raHits     []int16
	raOutcomes []int16
	raMaxShift int8

	// fc, when non-nil, is the file page cache: file-backed pages fault
	// through it and write back to its device instead of swap. Nil (the
	// default) keeps the historical behaviour where file-backed PTEs swap
	// like anon memory.
	fc *pagecache.Cache

	// audit, when non-nil, receives checkpoint events; every checkpoint
	// call below sits before the next possible yield point so the auditor
	// always observes a consistent intermediate state.
	audit *check.Auditor

	// faultLat records end-to-end major-fault service times (trap to PTE
	// install, including device time and retries). Recording is host-side
	// only — it never charges simulated CPU or yields — so it cannot
	// perturb the simulation.
	faultLat *stats.LatencyRecorder

	// tr, when non-nil, receives telemetry spans and gauges. Like audit,
	// tracing off costs one nil check per instrumented site; the manager
	// never charges simulated CPU for recording, so enabling it does not
	// change metrics.
	tr       *telemetry.Tracer
	trKswapd telemetry.TrackID
	trAging  telemetry.TrackID

	counters Counters
}

// New wires a Manager and spawns its kswapd and aging daemons on eng.
// The table's mapped ranges must be final before New is called (swap is
// sized from them).
func New(cfg Config, eng *sim.Engine, memry *mem.Memory, table *pagetable.Table,
	dev swap.Device, pol policy.Policy, rng *sim.RNG) *Manager {
	if cfg.ReclaimBatch <= 0 {
		cfg.ReclaimBatch = 32
	}
	if cfg.KswapdBatch <= 0 {
		cfg.KswapdBatch = 64
	}
	if cfg.AgingPoll <= 0 {
		cfg.AgingPoll = 1 * sim.Millisecond
	}
	slots := table.Pages() + 64
	if cfg.SwapSlots > 0 && cfg.SwapSlots < slots {
		slots = cfg.SwapSlots
	}
	m := &Manager{
		cfg:       cfg,
		eng:       eng,
		memry:     memry,
		table:     table,
		dev:       dev,
		pol:       pol,
		rng:       rng.Stream(0x7a),
		area:      swap.NewArea(slots),
		shadows:   mem.NewArena[shadowEntry](table.Pages(), 1024),
		versions:  mem.NewArena[uint32](table.Pages(), 1024),
		faultsAt:  mem.NewArena[uint32](table.Pages(), 1024),
		slotOwner: mem.NewArena[int64](slots, 1024),
		faultLat:  stats.NewLatencyRecorder(1024),
	}
	m.slotOwner.SetDefault(-1)
	for w := cfg.ReadaheadWindow; w > 1; w >>= 1 {
		m.raMaxShift++
	}
	m.raShift = make([]int8, table.Regions())
	m.raHits = make([]int16, table.Regions())
	m.raOutcomes = make([]int16, table.Regions())
	for i := range m.raShift {
		m.raShift[i] = m.raMaxShift
	}
	m.rm = rmap.New(memry, cfg.RMapCost, rng.Stream(0x7b))
	pol.Attach(m)
	if cfg.Audit {
		m.audit = check.NewAuditor(eng, memry, table, pol)
		if cfg.AuditEvery > 0 {
			m.audit.Every = cfg.AuditEvery
		}
		m.audit.WatchLists()
		m.audit.AddInvariant(m.auditSwapOwnership)
		// Policies carrying their own redundant verification state (the
		// MG-LRU region tracker) join the auditor's full scan.
		if ci, ok := pol.(interface{ CheckInvariants() error }); ok {
			m.audit.AddInvariant(ci.CheckInvariants)
		}
	}
	eng.Spawn("kswapd", true, m.kswapd)
	eng.Spawn("aging", true, m.agingDaemon)
	return m
}

// --- policy.Kernel implementation ---

// Mem implements policy.Kernel.
func (m *Manager) Mem() *mem.Memory { return m.memry }

// Table implements policy.Kernel.
func (m *Manager) Table() *pagetable.Table { return m.table }

// RMap implements policy.Kernel.
func (m *Manager) RMap() *rmap.Map { return m.rm }

// Rand implements policy.Kernel.
func (m *Manager) Rand() *sim.RNG { return m.rng }

// RequestAging implements policy.Kernel.
func (m *Manager) RequestAging() { m.agingReq = true }

// EvictPage implements policy.Kernel: unmap, write back if the swap copy
// is stale, free the frame. Clean pages with a valid swap copy are
// dropped without I/O.
func (m *Manager) EvictPage(v *sim.Env, f mem.FrameID, sh policy.Shadow) {
	fr := m.memry.Frame(f)
	vpn := pagetable.VPN(fr.VPN)
	if m.fc != nil && fr.Flags&mem.FlagFile != 0 {
		m.evictFilePage(v, f, fr, vpn, sh)
		return
	}
	slot := m.table.SwapOf(vpn)
	firstEvict := slot == pagetable.NilSwap
	if firstEvict {
		slot = m.area.Alloc()
		for slot == swap.NilSlot {
			// Swap exhausted: reap the highest-badness victim's slots and
			// retry, the way the kernel OOM-kills when swap is full.
			m.oomKill(v, vpn)
			slot = m.area.Alloc()
		}
		// Slot adjacency is frozen at first eviction: pages evicted
		// together become a readahead cluster for the rest of the run.
		*m.slotOwner.At(int(slot)) = int64(vpn)
	}
	if fr.Flags&mem.FlagPrefetch != 0 {
		// Speculation miss: evicted without ever being touched.
		m.counters.ReadaheadWaste++
		m.raOutcome(vpn, false)
	}
	dirty := m.table.Evict(vpn, slot)
	*m.shadows.At(int(vpn)) = shadowEntry{sh: sh, valid: true}
	if m.audit != nil {
		// Checkpoint before the device write: the write yields, and the
		// page may legitimately refault during it.
		m.audit.Evicted(v, vpn)
	}
	if dirty || firstEvict {
		if dirty {
			*m.versions.At(int(vpn))++
		}
		m.counters.SwapOuts++
		m.dev.WritePage(v, slot, int64(vpn), m.versions.Peek(int(vpn)))
	}
	fr.VPN = -1
	m.memry.Free(f)
}

// evictFilePage is EvictPage's page-cache branch. No swap slot is ever
// allocated — the backing location is the page's fixed file offset — and
// writeback happens only when the page is still dirty under the PTE or
// the cache's bitmap (the flusher may already have cleaned both).
func (m *Manager) evictFilePage(v *sim.Env, f mem.FrameID, fr *mem.Frame, vpn pagetable.VPN, sh policy.Shadow) {
	if fr.Flags&mem.FlagPrefetch != 0 {
		// Speculation miss: evicted without ever being touched.
		m.counters.ReadaheadWaste++
		m.raOutcome(vpn, false)
	}
	dirty := m.table.Evict(vpn, pagetable.NilSwap)
	if m.fc.ClearDirty(vpn) {
		dirty = true
	}
	m.fc.RecordEviction(vpn, sh)
	if m.audit != nil {
		// Checkpoint before the device write: the write yields, and the
		// page may legitimately refault during it.
		m.audit.EvictedFile(v, vpn)
	}
	if dirty {
		m.counters.FileWritebacks++
		m.fc.PageOut(v, vpn)
	}
	fr.VPN = -1
	m.memry.Free(f)
}

// --- fault path ---

// TryTouch performs the hot-path hardware access: if vpn is resident it
// sets the accessed (and dirty) bits and returns true with zero engine
// interaction. The caller accounts its own compute cost.
func (m *Manager) TryTouch(vpn pagetable.VPN, write bool) bool {
	m.counters.Accesses++
	f, ok := m.table.Walk(vpn, write)
	if ok {
		fr := m.memry.Frame(f)
		if fr.Flags&mem.FlagPrefetch != 0 {
			fr.Flags &^= mem.FlagPrefetch
			m.counters.ReadaheadHits++
			m.raOutcome(vpn, true)
		}
		if fr.Flags&mem.FlagFile != 0 {
			m.counters.FileAccesses++
			if m.fc != nil && write {
				if m.fc.NeedsWriteThrottle(vpn) {
					// Dirtying one more page must stall at the hard dirty
					// wall: fail the fast path so Fault's present branch
					// throttles, then completes the write. With the hard
					// ratio unset this check is one branch and never fires.
					return false
				}
				// Resident write to a file page: the cache tracks dirtiness
				// for the flusher (the PTE D bit alone is invisible to it).
				m.fc.MarkDirty(vpn)
			}
		}
	}
	return ok
}

// raOutcome feeds the adaptive readahead controller for vpn's region:
// sustained misses shrink its window toward zero, sustained hits grow it
// back.
func (m *Manager) raOutcome(vpn pagetable.VPN, hit bool) {
	r := m.table.RegionOf(vpn)
	if hit {
		m.raHits[r]++
	}
	m.raOutcomes[r]++
	if m.raOutcomes[r] < 32 {
		return
	}
	rate := float64(m.raHits[r]) / float64(m.raOutcomes[r])
	switch {
	case rate > 0.6 && m.raShift[r] < m.raMaxShift:
		m.raShift[r]++
	case rate < 0.3 && m.raShift[r] > 0:
		m.raShift[r]--
	}
	m.raHits[r], m.raOutcomes[r] = 0, 0
}

// Fault services a non-present access to vpn: it finds a frame (reclaiming
// if needed), reads the page from swap when one exists, installs the PTE,
// and informs the policy. Blocks the calling proc for the full service
// time.
func (m *Manager) Fault(v *sim.Env, vpn pagetable.VPN, write bool) {
	if m.table.IsPresent(vpn) {
		if m.fc != nil && write && m.table.FileBacked(vpn) && m.fc.NeedsWriteThrottle(vpn) {
			// TryTouch refused the fast path: this write would dirty one
			// more page past the hard dirty wall. Stall, then complete the
			// write if the page survived the throttle; if reclaim evicted
			// it meanwhile, fall through to a fresh file fault.
			m.throttleWrite(v, vpn)
			if m.table.IsPresent(vpn) {
				if _, ok := m.table.Walk(vpn, true); ok {
					m.fc.MarkDirty(vpn)
				}
				return
			}
		} else {
			return // raced with another thread's fault-in
		}
	}
	if m.fc != nil && m.table.FileBacked(vpn) {
		m.fileFault(v, vpn, write)
		return
	}
	major := m.table.SwapOf(vpn) != pagetable.NilSwap
	if major {
		start := v.Now()
		defer func() { m.faultLat.Record(int64(v.Now() - start)) }()
		if m.tr != nil {
			// One track per faulting proc; the span covers the full service
			// time including readahead.
			sp := m.tr.Begin(m.tr.Track(v.Proc().Name()), "major-fault")
			defer sp.EndArg(int64(vpn))
		}
	}

	f := m.ensureFrame(v)

	if major {
		m.counters.MajorFaults++
		m.counters.SwapIns++
		*m.faultsAt.At(int(vpn))++
		v.Charge(m.cfg.MajorFaultOverhead)
		// Re-read the slot at issue time: the historical long-lived PTE
		// pointer observed concurrent OOM reaping here, and so must we.
		m.dev.ReadPage(v, m.table.SwapOf(vpn), int64(vpn), m.versions.Peek(int(vpn)))
	} else {
		m.counters.MinorFaults++
		v.Charge(m.cfg.MinorFaultOverhead)
	}

	if m.table.IsPresent(vpn) {
		// Another thread faulted the page in while we were blocked on
		// the device read; release our frame.
		m.memry.Free(f)
		return
	}

	m.table.Insert(vpn, f, write)
	fr := m.memry.Frame(f)
	fr.VPN = int64(vpn)
	if m.table.FileBacked(vpn) {
		fr.Flags |= mem.FlagFile
	}
	var sh *policy.Shadow
	if m.shadows.Peek(int(vpn)).valid {
		s := m.shadows.Peek(int(vpn)).sh
		sh = &s
		m.shadows.At(int(vpn)).valid = false
	}
	if m.audit != nil {
		// Checkpoint before PageIn: PageIn charges CPU (a yield point),
		// and concurrent reclaim could evict this page before it returns.
		m.audit.FaultIn(v, vpn, sh != nil)
	}
	m.pol.PageIn(v, f, sh)

	if major {
		m.readahead(v, vpn, m.table.SwapOf(vpn))
	}
}

// readahead pulls the other swapped-out pages of the faulting slot's
// aligned cluster into memory, without setting their accessed bits and
// without triggering reclaim (it only runs while memory is comfortably
// above the low watermark). Whether a cluster holds pages that will be
// wanted together is determined by the slot layout — eviction-order luck
// — which makes readahead effectiveness, and with it the total fault
// count, vary across otherwise identical runs.
func (m *Manager) readahead(v *sim.Env, at pagetable.VPN, slot int32) {
	if slot < 0 {
		// The OOM reaper discarded the anchoring slot while the demand
		// read was in flight; there is no cluster to anchor at.
		return
	}
	w := int32(1) << m.raShift[m.table.RegionOf(at)]
	if w <= 1 || m.cfg.ReadaheadWindow <= 1 {
		return
	}
	base := slot - slot%w
	for s2 := base; s2 < base+w; s2++ {
		if s2 == slot || int(s2) >= m.slotOwner.Len() || s2 < 0 {
			continue
		}
		if m.memry.FreePages() <= m.memry.Low {
			return // never reclaim for speculation
		}
		owner := m.slotOwner.Peek(int(s2))
		if owner < 0 {
			continue
		}
		vpn2 := pagetable.VPN(owner)
		if m.table.IsPresent(vpn2) || m.table.SwapOf(vpn2) != s2 {
			continue
		}
		f := m.memry.Alloc()
		if f == mem.NilFrame {
			return
		}
		m.table.InsertPrefetch(vpn2, f)
		fr := m.memry.Frame(f)
		fr.VPN = owner
		fr.Flags |= mem.FlagPrefetch
		if m.table.FileBacked(vpn2) {
			fr.Flags |= mem.FlagFile
		}
		hadShadow := m.shadows.Peek(int(vpn2)).valid
		if hadShadow {
			m.shadows.At(int(vpn2)).valid = false
		}
		if m.audit != nil {
			// Checkpoint before the device read (a yield point); the
			// prefetch deliberately drops the page's shadow.
			m.audit.PrefetchIn(v, vpn2, hadShadow)
		}
		m.counters.ReadaheadIn++
		m.dev.PrefetchPage(v, s2, owner, m.versions.Peek(int(vpn2)))
		m.pol.PageIn(v, f, nil)
	}
}

// fileFault services a non-present access to a file-backed page through
// the page cache: always a major fault — the content comes from the
// backing file, never swap — followed by sequential file readahead. The
// page's shadow entry, if one survives from a prior eviction, feeds the
// policy's refault detection exactly like the anon path.
func (m *Manager) fileFault(v *sim.Env, vpn pagetable.VPN, write bool) {
	if m.fc.Poisoned(vpn) {
		// The page's backing read previously exhausted its retry budget:
		// hwpoison-style, the fault fails fast — a SIGBUS delivery, not a
		// trial abort — without touching the device again.
		m.fc.NotePoisonedFault()
		v.Charge(m.cfg.MinorFaultOverhead)
		return
	}
	start := v.Now()
	defer func() { m.faultLat.Record(int64(v.Now() - start)) }()
	if m.tr != nil {
		sp := m.tr.Begin(m.tr.Track(v.Proc().Name()), "file-fault")
		defer sp.EndArg(int64(vpn))
	}

	f := m.ensureFrame(v)
	m.counters.MajorFaults++
	m.counters.FileFaults++
	*m.faultsAt.At(int(vpn))++
	v.Charge(m.cfg.MajorFaultOverhead)
	if !m.fc.ReadPage(v, vpn) {
		// The demand read exhausted the device's retry budget. The cache
		// has poisoned the page and accounted a FileIOError; this fault
		// fails SIGBUS-fashion — frame released, nothing installed, no
		// readahead anchored — and the trial keeps running. Any surviving
		// shadow entry stays put: the page never came back.
		m.memry.Free(f)
		return
	}

	if m.table.IsPresent(vpn) {
		// Another thread faulted the page in while we were blocked on
		// the device read; release our frame.
		m.memry.Free(f)
		return
	}

	m.table.Insert(vpn, f, write)
	fr := m.memry.Frame(f)
	fr.VPN = int64(vpn)
	fr.Flags |= mem.FlagFile
	if write {
		m.fc.MarkDirty(vpn)
	}
	m.fc.NoteResident(vpn)
	sh := m.fc.TakeShadow(vpn)
	if m.audit != nil {
		// Checkpoint before PageIn: PageIn charges CPU (a yield point),
		// and concurrent reclaim could evict this page before it returns.
		m.audit.FileFaultIn(v, vpn, sh != nil)
	}
	m.pol.PageIn(v, f, sh)

	if write && m.fc.OverHardLimit() {
		// This write pushed the dirty set to the hard wall; stall the
		// writer (balance_dirty_pages runs after the dirtying write).
		m.throttleWrite(v, vpn)
	}

	m.fileReadahead(v, vpn)
}

// throttleWrite stalls a writer at the hard dirty limit (vm.dirty_ratio)
// until the flusher drains the dirty set, with a span on the proc's own
// track so throttle stalls are attributable in traces.
func (m *Manager) throttleWrite(v *sim.Env, vpn pagetable.VPN) {
	if m.tr != nil {
		sp := m.tr.Begin(m.tr.Track(v.Proc().Name()), "dirty-throttle")
		defer sp.EndArg(int64(vpn))
	}
	m.fc.ThrottleWriter(v)
}

// fileReadahead pulls the pages sequentially ahead of the fault within
// the same file span into memory. Unlike swap readahead there is no slot
// layout to gamble on — file adjacency is device adjacency by
// construction — so the window is purely sequential, governed by the
// same per-region adaptive shift as swap readahead: streaming reads keep
// wide windows, random object access collapses to demand paging.
func (m *Manager) fileReadahead(v *sim.Env, at pagetable.VPN) {
	w := pagetable.VPN(1) << m.raShift[m.table.RegionOf(at)]
	if w <= 1 || m.cfg.ReadaheadWindow <= 1 {
		return
	}
	pages := pagetable.VPN(m.table.Pages())
	for vpn2 := at + 1; vpn2 <= at+w && vpn2 < pages; vpn2++ {
		if !m.table.FileBacked(vpn2) {
			return // ran off the end of the file span
		}
		if m.memry.FreePages() <= m.memry.Low {
			return // never reclaim for speculation
		}
		if m.table.IsPresent(vpn2) {
			continue
		}
		if m.fc.Poisoned(vpn2) {
			// Never speculate into a poisoned page; its read would just
			// fail again.
			continue
		}
		f := m.memry.Alloc()
		if f == mem.NilFrame {
			return
		}
		m.table.InsertPrefetch(vpn2, f)
		fr := m.memry.Frame(f)
		fr.VPN = int64(vpn2)
		fr.Flags |= mem.FlagPrefetch | mem.FlagFile
		// The prefetch deliberately drops the page's shadow without
		// counting a refault: speculation is not eviction-was-premature
		// evidence.
		hadShadow := m.fc.DropShadow(vpn2)
		m.fc.NoteResident(vpn2)
		if m.audit != nil {
			// Checkpoint after NoteResident (the auditor reconciles the
			// cache's resident count) but before the device read (a
			// yield point).
			m.audit.FilePrefetchIn(v, vpn2, hadShadow)
		}
		m.counters.ReadaheadIn++
		if !m.fc.PrefetchPage(v, vpn2) {
			// The speculative read failed. Speculative I/O never fails
			// anything: if the page is still an untouched prefetch, tear
			// it back out as though the readahead had never happened and
			// stop the cluster there. Reclaim cannot have evicted it —
			// the policy only learns about the page at PageIn — but a
			// thread may have touched it mid-read (clearing FlagPrefetch);
			// that demand access absorbs the error and the page stays.
			if fr.Flags&mem.FlagPrefetch != 0 {
				m.table.Evict(vpn2, pagetable.NilSwap)
				m.counters.ReadaheadIn--
				m.fc.AbandonResident(vpn2)
				if m.audit != nil {
					m.audit.FilePrefetchAbandoned(v, vpn2)
				}
				fr.VPN = -1
				m.memry.Free(f)
				return
			}
		}
		m.pol.PageIn(v, f, nil)
	}
}

// Touch is TryTouch+Fault in one call, for callers that don't batch.
func (m *Manager) Touch(v *sim.Env, vpn pagetable.VPN, write bool) (faulted bool) {
	if m.TryTouch(vpn, write) {
		return false
	}
	m.Fault(v, vpn, write)
	return true
}

// ensureFrame allocates a frame, entering direct reclaim when memory is
// exhausted and waking kswapd when the low watermark is crossed.
func (m *Manager) ensureFrame(v *sim.Env) mem.FrameID {
	for attempt := 0; ; attempt++ {
		if f := m.memry.Alloc(); f != mem.NilFrame {
			if m.memry.BelowLow() {
				m.kswapdCond.Broadcast(v.Engine())
			}
			return f
		}
		// Allocation failed: direct reclaim on the faulting thread.
		m.counters.DirectReclaims++
		m.kswapdCond.Broadcast(v.Engine())
		var sp telemetry.Span
		if m.tr != nil {
			sp = m.tr.Begin(m.tr.Track(v.Proc().Name()), "direct-reclaim")
		}
		n := m.pol.Reclaim(v, m.cfg.ReclaimBatch)
		sp.EndArg(int64(n))
		if n == 0 {
			// No progress — let kswapd/aging run and retry.
			if attempt > 10000 {
				panic(fmt.Sprintf("vmm: reclaim livelock at %v (free=%d)", v.Now(), m.memry.FreePages()))
			}
			v.Sleep(100 * sim.Microsecond)
		}
	}
}

// --- background daemons ---

// kswapd reclaims from the low watermark up to the high watermark.
func (m *Manager) kswapd(v *sim.Env) {
	for {
		v.WaitFor(&m.kswapdCond, m.memry.BelowLow)
		m.counters.KswapdBursts++
		var sp telemetry.Span
		if m.tr != nil {
			// The low-watermark crossing that woke the burst, then the burst
			// itself with total pages reclaimed as its argument.
			m.tr.Instant(m.trKswapd, "watermark-low", int64(m.memry.FreePages()))
			sp = m.tr.Begin(m.trKswapd, "kswapd-burst")
		}
		var reclaimed int64
		for m.memry.BelowHigh() {
			n := m.pol.Reclaim(v, m.cfg.KswapdBatch)
			reclaimed += int64(n)
			if n == 0 {
				// No progress; back off so the system can move.
				v.Sleep(200 * sim.Microsecond)
				if !m.memry.BelowLow() {
					break
				}
			}
		}
		sp.EndArg(reclaimed)
	}
}

// agingDaemon runs the policy's background aging: on request, when the
// policy reports need, and proactively on a period. This is the separate
// scanning thread whose CPU contention the paper identifies as an MG-LRU
// variance source (§VI-A); for Clock, Age is a no-op and the daemon just
// idles.
func (m *Manager) agingDaemon(v *sim.Env) {
	lastProactive := v.Now()
	for {
		proactiveDue := m.cfg.ProactiveInterval > 0 &&
			v.Now()-lastProactive >= sim.Time(m.cfg.ProactiveInterval)
		if m.agingReq || m.pol.NeedsAging() || proactiveDue {
			m.agingReq = false
			if proactiveDue {
				lastProactive = v.Now()
			}
			var sp telemetry.Span
			if m.tr != nil {
				sp = m.tr.Begin(m.trAging, "aging-pass")
			}
			worked := m.pol.Age(v)
			workedArg := int64(0)
			if worked {
				workedArg = 1
			}
			sp.EndArg(workedArg)
			if m.audit != nil {
				m.audit.AgingPass(v)
			}
			// Yield before a possible back-to-back walk, so procs woken
			// by this walk's completion get to observe it; otherwise a
			// daemon whose walks take longer than the proactive interval
			// starves every waiter.
			v.Yield()
			if !worked && !proactiveDue {
				// Policy has no aging work (e.g. Clock): idle longer.
				v.Sleep(10 * m.cfg.AgingPoll)
			}
			continue
		}
		v.Sleep(m.cfg.AgingPoll)
	}
}

// auditSwapOwnership cross-checks the slot-ownership table against the
// PTEs: every assigned swap slot must be owned by the page whose PTE
// points at it, and vice versa. Registered with the auditor's full scan.
func (m *Manager) auditSwapOwnership() error {
	pages := m.table.Pages()
	for i := 0; i < pages; i++ {
		vpn := pagetable.VPN(i)
		slot := m.table.SwapOf(vpn)
		if slot == pagetable.NilSwap {
			continue
		}
		if int(slot) < 0 || int(slot) >= m.slotOwner.Len() {
			return fmt.Errorf("vpn %d holds out-of-range swap slot %d", vpn, slot)
		}
		if owner := m.slotOwner.Peek(int(slot)); owner != int64(vpn) {
			return fmt.Errorf("vpn %d holds swap slot %d but the slot is owned by vpn %d", vpn, slot, owner)
		}
	}
	// Area-level cross-check: a slot is allocated in the area exactly when
	// the ownership table assigns it. Divergence means a slot was freed
	// while still owned (use after free) or leaked after its owner let go.
	for s := 0; s < m.area.Capacity(); s++ {
		held := m.slotOwner.Peek(s) >= 0
		if alloc := m.area.Allocated(swap.Slot(s)); alloc != held {
			return fmt.Errorf("swap slot %d: area allocated=%v but ownership table says owned=%v", s, alloc, held)
		}
	}
	return nil
}

// --- accessors ---

// Auditor exposes the invariant auditor, or nil when auditing is off.
func (m *Manager) Auditor() *check.Auditor { return m.audit }

// AttachFileCache wires the page cache into the fault and eviction
// paths: file-backed pages then read through and write back to the
// cache's own device instead of swap. Call after New and before the
// engine runs. Without a cache (the default) file-backed PTEs swap like
// anon memory and the only added cost is a nil check per fault,
// eviction, and resident write.
func (m *Manager) AttachFileCache(fc *pagecache.Cache) {
	m.fc = fc
	if m.audit != nil {
		m.audit.SetFileCache(fc)
	}
}

// SetTracer attaches the telemetry tracer and registers the manager's
// gauges. Call after New and before the engine runs: the daemons read the
// field only at instrumented sites, so late binding is safe, but gauges
// must be registered before the first sample. A nil tracer (the default)
// keeps every instrumented site on the single-nil-check fast path.
func (m *Manager) SetTracer(tr *telemetry.Tracer) {
	m.tr = tr
	if tr == nil {
		return
	}
	m.trKswapd = tr.Track("kswapd")
	m.trAging = tr.Track("aging")
	tr.Gauge("vmm.resident_pages", func() int64 { return int64(m.table.PresentPages()) })
	tr.Gauge("vmm.free_pages", func() int64 { return int64(m.memry.FreePages()) })
	tr.Gauge("vmm.swap_in_use", func() int64 { return int64(m.area.InUse()) })
	tr.Gauge("vmm.major_faults", func() int64 { return int64(m.counters.MajorFaults) })
	tr.Gauge("vmm.minor_faults", func() int64 { return int64(m.counters.MinorFaults) })
	tr.Gauge("vmm.swap_ins", func() int64 { return int64(m.counters.SwapIns) })
	tr.Gauge("vmm.swap_outs", func() int64 { return int64(m.counters.SwapOuts) })
	tr.Gauge("vmm.direct_reclaims", func() int64 { return int64(m.counters.DirectReclaims) })
	tr.Gauge("vmm.kswapd_bursts", func() int64 { return int64(m.counters.KswapdBursts) })
	tr.Gauge("vmm.readahead_in", func() int64 { return int64(m.counters.ReadaheadIn) })
	tr.Gauge("vmm.file_faults", func() int64 { return int64(m.counters.FileFaults) })
	tr.Gauge("vmm.file_writebacks", func() int64 { return int64(m.counters.FileWritebacks) })
	tr.Gauge("vmm.oom_kills", func() int64 { return int64(m.counters.OOMKills) })
	if m.audit != nil {
		// Auditor→telemetry hook: each invariant violation lands in the
		// flight ring as an instant and in the dump's notes as the full
		// diff, so flight.txt carries the breached invariant even when the
		// trial dies before the AuditErr error path runs.
		trAudit := tr.Track("audit")
		m.audit.SetReporter(func(v check.Violation) {
			tr.Instant(trAudit, "audit-violation", int64(v.At))
			tr.Note("invariant: " + v.String())
		})
	}
}

// Tracer exposes the attached telemetry tracer (nil when tracing is off),
// so downstream instrumentation can share the trial's sink.
func (m *Manager) Tracer() *telemetry.Tracer { return m.tr }

// AuditErr finalizes the auditor (a last full-state scan) and returns nil
// when no invariant was breached. Call once when the trial ends; returns
// nil when auditing is off.
func (m *Manager) AuditErr() error {
	if m.audit == nil {
		return nil
	}
	m.audit.Final(m.eng.Now())
	return m.audit.Err()
}

// Counters returns fault-path counters.
func (m *Manager) Counters() Counters { return m.counters }

// FaultLatencies exposes the major-fault service-time recorder: the
// paper-style fault-latency CDF of the trial. Valid after the trial ends.
func (m *Manager) FaultLatencies() *stats.LatencyRecorder { return m.faultLat }

// PolicyStats returns the attached policy's counters.
func (m *Manager) PolicyStats() policy.Stats { return m.pol.Stats() }

// DeviceStats returns the swap device's counters.
func (m *Manager) DeviceStats() swap.Stats { return m.dev.Stats() }

// Policy exposes the attached policy (for visualization tools).
func (m *Manager) Policy() policy.Policy { return m.pol }

// SwapInUse reports allocated swap slots.
func (m *Manager) SwapInUse() int { return m.area.InUse() }

// MajorFaultsAt reports the number of major faults taken on vpn; analysis
// tools use it to attribute faults to address-space segments.
func (m *Manager) MajorFaultsAt(vpn pagetable.VPN) uint64 { return uint64(m.faultsAt.Peek(int(vpn))) }

// ResidentPages reports pages currently in memory.
func (m *Manager) ResidentPages() int { return m.table.PresentPages() }
