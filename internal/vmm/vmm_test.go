package vmm

import (
	"testing"
	"time"

	"mglrusim/internal/mem"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/policy/mglru"
	"mglrusim/internal/sim"
	"mglrusim/internal/swap"
)

// rig assembles a full manager with the given policy and memory size.
type rig struct {
	eng *sim.Engine
	m   *Manager
	mem *mem.Memory
}

func newRig(frames, mappedPages int, pol policy.Policy, seed uint64) *rig {
	eng := sim.NewEngine(4)
	rng := sim.NewRNG(seed)
	memory := mem.New(frames)
	regions := (mappedPages + pagetable.PTEsPerRegion - 1) / pagetable.PTEsPerRegion
	table := pagetable.New(regions)
	table.MapRange(0, mappedPages, false)
	dev := swap.NewSSD(swap.SSDConfig{
		ReadLatency: 100 * sim.Microsecond, WriteLatency: 100 * sim.Microsecond,
		QueueDepth: 8, MaxDirtyWrites: 32,
	}, eng, rng.Stream(1))
	mgr := New(DefaultConfig(), eng, memory, table, dev, pol, rng.Stream(2))
	return &rig{eng: eng, m: mgr, mem: memory}
}

func (r *rig) run(t *testing.T, fn func(*sim.Env)) {
	t.Helper()
	r.eng.Spawn("app", false, fn)
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstTouchIsMinorFault(t *testing.T) {
	r := newRig(64, 32, clock.New(clock.DefaultConfig()), 1)
	r.run(t, func(v *sim.Env) {
		if !r.m.Touch(v, 0, false) {
			t.Error("first touch should fault")
		}
		if r.m.Touch(v, 0, false) {
			t.Error("second touch should hit")
		}
	})
	c := r.m.Counters()
	if c.MinorFaults != 1 || c.MajorFaults != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestWorkingSetBeyondMemorySwaps(t *testing.T) {
	// 32 frames, 64-page working set: must swap.
	r := newRig(32, 64, clock.New(clock.DefaultConfig()), 1)
	r.run(t, func(v *sim.Env) {
		for pass := 0; pass < 3; pass++ {
			for vpn := pagetable.VPN(0); vpn < 64; vpn++ {
				r.m.Touch(v, vpn, false)
			}
		}
	})
	c := r.m.Counters()
	if c.MajorFaults == 0 {
		t.Fatal("no major faults despite 2x oversubscription")
	}
	if c.SwapOuts == 0 {
		t.Fatal("no swap-outs recorded")
	}
	if r.m.ResidentPages() > 32 {
		t.Fatalf("resident %d exceeds memory %d", r.m.ResidentPages(), 32)
	}
}

func TestPageConservation(t *testing.T) {
	// Invariant: resident + swapped-but-mapped accounting stays sane.
	r := newRig(32, 64, mglru.New(mglru.Default()), 2)
	r.run(t, func(v *sim.Env) {
		for pass := 0; pass < 4; pass++ {
			for vpn := pagetable.VPN(0); vpn < 64; vpn++ {
				r.m.Touch(v, vpn, pass%2 == 0)
			}
		}
	})
	if r.m.ResidentPages()+r.m.SwapInUse() < 64 {
		t.Fatalf("pages lost: resident=%d swapInUse=%d", r.m.ResidentPages(), r.m.SwapInUse())
	}
	if used := r.mem.UsedPages(); used != r.m.ResidentPages() {
		t.Fatalf("frame accounting mismatch: used=%d resident=%d", used, r.m.ResidentPages())
	}
}

func TestDirtyPagesWrittenCleanPagesDropped(t *testing.T) {
	r := newRig(16, 32, clock.New(clock.DefaultConfig()), 3)
	r.run(t, func(v *sim.Env) {
		// Read-only across 32 pages twice: each page is written to swap
		// at most once (first eviction), then dropped clean afterwards.
		for pass := 0; pass < 4; pass++ {
			for vpn := pagetable.VPN(0); vpn < 32; vpn++ {
				r.m.Touch(v, vpn, false)
			}
		}
	})
	c := r.m.Counters()
	if c.SwapOuts > 40 {
		t.Fatalf("swap-outs = %d; clean re-evictions should not rewrite", c.SwapOuts)
	}
	if c.SwapIns == 0 {
		t.Fatal("no swap-ins")
	}
}

func TestRefaultShadowsReachPolicy(t *testing.T) {
	pol := mglru.New(mglru.Default())
	r := newRig(16, 48, pol, 4)
	r.run(t, func(v *sim.Env) {
		for pass := 0; pass < 3; pass++ {
			for vpn := pagetable.VPN(0); vpn < 48; vpn++ {
				r.m.Touch(v, vpn, false)
			}
		}
	})
	if pol.Stats().Refaults == 0 {
		t.Fatal("no refaults recorded by policy")
	}
}

func TestKswapdKeepsFreeAboveMin(t *testing.T) {
	r := newRig(64, 128, clock.New(clock.DefaultConfig()), 5)
	r.run(t, func(v *sim.Env) {
		for pass := 0; pass < 2; pass++ {
			for vpn := pagetable.VPN(0); vpn < 128; vpn++ {
				r.m.Touch(v, vpn, false)
				v.Charge(500 * sim.Nanosecond) // give kswapd CPU room
			}
		}
	})
	if r.m.Counters().KswapdBursts == 0 {
		t.Fatal("kswapd never ran")
	}
}

func TestMGLRUAgingDaemonRuns(t *testing.T) {
	pol := mglru.New(mglru.Default())
	r := newRig(32, 64, pol, 6)
	r.run(t, func(v *sim.Env) {
		for pass := 0; pass < 3; pass++ {
			for vpn := pagetable.VPN(0); vpn < 64; vpn++ {
				r.m.Touch(v, vpn, false)
				v.Charge(1 * sim.Microsecond)
			}
		}
	})
	if pol.Stats().AgingRuns == 0 {
		t.Fatal("aging never ran")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (sim.Time, Counters) {
		pol := mglru.New(mglru.Default())
		r := newRig(32, 64, pol, 99)
		var end sim.Time
		r.run(t, func(v *sim.Env) {
			for pass := 0; pass < 3; pass++ {
				for vpn := pagetable.VPN(0); vpn < 64; vpn++ {
					r.m.Touch(v, vpn, pass%2 == 1)
					v.Charge(200 * sim.Nanosecond)
				}
			}
			end = v.Now()
		})
		return end, r.m.Counters()
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("nondeterministic: %v/%+v vs %v/%+v", t1, c1, t2, c2)
	}
}

func TestMajorFaultPaysDeviceLatency(t *testing.T) {
	r := newRig(16, 32, clock.New(clock.DefaultConfig()), 7)
	var firstPass, secondPass sim.Time
	r.run(t, func(v *sim.Env) {
		for vpn := pagetable.VPN(0); vpn < 32; vpn++ {
			r.m.Touch(v, vpn, false)
		}
		firstPass = v.Now()
		for vpn := pagetable.VPN(0); vpn < 32; vpn++ {
			r.m.Touch(v, vpn, false)
		}
		secondPass = v.Now() - firstPass
	})
	if r.m.Counters().MajorFaults == 0 {
		t.Fatal("expected major faults on second pass")
	}
	if secondPass == 0 {
		t.Fatal("second pass took no time")
	}
}

func TestConcurrentFaultersOnSamePages(t *testing.T) {
	// Two procs hammering overlapping pages: the double-fault-in race
	// path must not corrupt accounting.
	pol := mglru.New(mglru.Default())
	eng := sim.NewEngine(2)
	rng := sim.NewRNG(11)
	memory := mem.New(24)
	table := pagetable.New(1)
	table.MapRange(0, 48, false)
	dev := swap.NewSSD(swap.SSDConfig{ReadLatency: 200 * sim.Microsecond, WriteLatency: 200 * sim.Microsecond, QueueDepth: 4, MaxDirtyWrites: 16}, eng, rng.Stream(1))
	m := New(DefaultConfig(), eng, memory, table, dev, pol, rng.Stream(2))
	for i := 0; i < 2; i++ {
		eng.Spawn("app", false, func(v *sim.Env) {
			for pass := 0; pass < 3; pass++ {
				for vpn := pagetable.VPN(0); vpn < 48; vpn++ {
					m.Touch(v, vpn, false)
				}
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if m.ResidentPages() != memory.UsedPages() {
		t.Fatalf("accounting mismatch: resident=%d used=%d", m.ResidentPages(), memory.UsedPages())
	}
	if m.ResidentPages() > 24 {
		t.Fatal("resident exceeds physical memory")
	}
}

// Regression test for the aging-walk starvation livelock: when walks take
// longer than the proactive interval, the aging daemon runs back-to-back
// walks; procs waiting for a walk to finish must still make progress
// (walk epochs), or every reclaimer parks forever while the daemon spins.
func TestNoAgingStarvationUnderContinuousWalks(t *testing.T) {
	eng := sim.NewEngine(4)
	rng := sim.NewRNG(3)
	cfg := DefaultConfig()
	cfg.ProactiveInterval = 10 * sim.Microsecond // walks always due
	memory := mem.New(48)
	table := pagetable.New(1)
	table.MapRange(0, 96, false)
	dev := swap.NewSSD(swap.SSDConfig{
		ReadLatency: 200 * sim.Microsecond, WriteLatency: 200 * sim.Microsecond,
		QueueDepth: 4, MaxDirtyWrites: 16,
	}, eng, rng.Stream(1))
	mgr := New(cfg, eng, memory, table, dev, mglru.New(mglru.Default()), rng.Stream(2))
	for i := 0; i < 4; i++ {
		eng.Spawn("app", false, func(v *sim.Env) {
			for pass := 0; pass < 3; pass++ {
				for vpn := pagetable.VPN(0); vpn < 96; vpn++ {
					mgr.Touch(v, vpn, pass%2 == 0)
				}
			}
		})
	}
	done := make(chan error, 1)
	go func() { done <- eng.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("livelock: simulation did not finish")
	}
}
