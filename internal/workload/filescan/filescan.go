// Package filescan is a synthetic file-I/O-heavy workload used by the
// ablation benchmarks for MG-LRU's tier/PID machinery (§III-D): an
// anonymous working set accessed with skew competes with repeated buffered
// reads of file-backed data. Without tier protection, the repeatedly read
// file pages either pollute the young generations or thrash; the PID
// controller's refault balancing is what this workload stresses. The
// paper's own workloads do little FD I/O, so it leaves PID tuning to
// future work — this workload is that future-work probe.
package filescan

import (
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
	"mglrusim/internal/zram"
)

// Config sizes the workload.
type Config struct {
	// AnonPages is the anonymous working set (zipf-accessed).
	AnonPages int
	// FilePages is the file-backed data set, read via FD.
	FilePages int
	// HotFilePages is the prefix of the file that is re-read every
	// round (the frequently accessed buffered I/O the tiers protect).
	HotFilePages int
	// Rounds of interleaved anon access + file reads.
	Rounds int
	// AnonTouchesPerRound is zipf-distributed anon accesses per round.
	AnonTouchesPerRound int
	// Threads is the parallelism.
	Threads int
	// Theta is the anon access skew.
	Theta float64
	// TouchCPU is compute per access.
	TouchCPU sim.Duration
	// RegionPTEs is the page-table region fanout.
	RegionPTEs int
}

// DefaultConfig returns a configuration that oversubscribes 50% capacity
// with meaningful hot-file reuse.
func DefaultConfig() Config {
	return Config{
		AnonPages:           1600,
		FilePages:           1600,
		HotFilePages:        400,
		Rounds:              8,
		AnonTouchesPerRound: 2400,
		Threads:             8,
		Theta:               0.8,
		TouchCPU:            120 * sim.Microsecond,
		RegionPTEs:          workload.DefaultRegionPTEs,
	}
}

// FileScan is the workload.
type FileScan struct {
	cfg        Config
	as         *workload.AddrSpace
	anon, file workload.Segment
}

// New builds the workload.
func New(cfg Config) *FileScan {
	if cfg.Threads <= 0 || cfg.Rounds <= 0 {
		panic("filescan: invalid config")
	}
	w := &FileScan{cfg: cfg, as: workload.NewAddrSpace(cfg.RegionPTEs)}
	w.anon = w.as.Add("anon", cfg.AnonPages, false, zram.ClassStructured)
	w.file = w.as.Add("file", cfg.FilePages, true, zram.ClassStructured)
	return w
}

// Name implements workload.Workload.
func (w *FileScan) Name() string { return "filescan" }

// TableRegions implements workload.Workload.
func (w *FileScan) TableRegions() int { return w.as.Regions() }

// RegionPTEs implements workload.Workload.
func (w *FileScan) RegionPTEs() int { return w.as.RegionPTEs() }

// Layout implements workload.Workload.
func (w *FileScan) Layout(t *pagetable.Table) { w.as.Map(t) }

// FootprintPages implements workload.Workload.
func (w *FileScan) FootprintPages() int { return w.as.FootprintPages() }

// ContentClass implements workload.Workload.
func (w *FileScan) ContentClass(vpn int64) zram.ContentClass { return w.as.ClassOf(vpn) }

// Segments implements workload.Segmented.
func (w *FileScan) Segments() []workload.Segment { return w.as.Segments() }

// Threads implements workload.Workload.
func (w *FileScan) Threads(plan, trial *sim.RNG) []workload.Stream {
	n := w.cfg.Threads
	streams := make([]workload.Stream, n)
	for tid := 0; tid < n; tid++ {
		streams[tid] = &stream{
			w:    w,
			zipf: workload.NewZipfian(int64(w.cfg.AnonPages), w.cfg.Theta),
			rng:  trial.Stream(uint64(tid) + 31),
			from: w.cfg.FilePages * tid / n,
			to:   w.cfg.FilePages * (tid + 1) / n,
			hotF: w.cfg.HotFilePages * tid / n,
			hotT: w.cfg.HotFilePages * (tid + 1) / n,
		}
	}
	return streams
}

type stream struct {
	w          *FileScan
	zipf       *workload.Zipfian
	rng        *sim.RNG
	from, to   int // cold file range (read once, round 0)
	hotF, hotT int // hot file range (read every round)

	round   int
	anonAcc int
	filePos int
	phase   int // 0: anon touches, 1: file reads, 2: barrier
}

// Next implements workload.Stream: each round interleaves skewed anon
// touches with buffered re-reads of the hot file prefix (plus one full
// cold read in round 0), ending in a barrier.
func (s *stream) Next(op *workload.Op) bool {
	w := s.w
	for {
		if s.round >= w.cfg.Rounds {
			return false
		}
		switch s.phase {
		case 0:
			if s.anonAcc >= w.cfg.AnonTouchesPerRound/w.cfg.Threads {
				s.phase = 1
				s.anonAcc = 0
				continue
			}
			s.anonAcc++
			page := int(s.zipf.Next(s.rng))
			*op = workload.Op{
				Kind: workload.OpAccess, VPN: w.anon.Page(page),
				Write: s.rng.Bool(0.3), CPU: w.cfg.TouchCPU,
			}
			return true
		case 1:
			lo, hi := s.hotF, s.hotT
			if s.round == 0 {
				lo, hi = s.from, s.to // cold full read once
			}
			if s.filePos >= hi-lo {
				s.phase = 2
				s.filePos = 0
				continue
			}
			page := lo + s.filePos
			s.filePos++
			*op = workload.Op{Kind: workload.OpAccess, VPN: w.file.Page(page), CPU: w.cfg.TouchCPU}
			return true
		default:
			s.phase = 0
			s.round++
			*op = workload.Op{Kind: workload.OpBarrier}
			return true
		}
	}
}

var _ workload.Workload = (*FileScan)(nil)
var _ workload.Segmented = (*FileScan)(nil)
