package filescan

import (
	"testing"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
)

func small() Config {
	cfg := DefaultConfig()
	cfg.AnonPages = 200
	cfg.FilePages = 200
	cfg.HotFilePages = 60
	cfg.Rounds = 3
	cfg.Threads = 4
	cfg.AnonTouchesPerRound = 400
	return cfg
}

func TestStreamsStayInMappedSpace(t *testing.T) {
	w := New(small())
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	var op workload.Op
	for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(2)) {
		for s.Next(&op) {
			if op.Kind == workload.OpAccess && !tb.PTE(op.VPN).Mapped() {
				t.Fatalf("unmapped access %d", op.VPN)
			}
		}
	}
}

func TestFileSegmentIsFileBacked(t *testing.T) {
	w := New(small())
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	if !tb.PTE(w.file.Base).File() {
		t.Fatal("file segment not file-backed")
	}
	if tb.PTE(w.anon.Base).File() {
		t.Fatal("anon segment marked file")
	}
}

func TestBarrierPerRound(t *testing.T) {
	cfg := small()
	w := New(cfg)
	var op workload.Op
	for i, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(2)) {
		barriers := 0
		for s.Next(&op) {
			if op.Kind == workload.OpBarrier {
				barriers++
			}
		}
		if barriers != cfg.Rounds {
			t.Fatalf("thread %d barriers = %d, want %d", i, barriers, cfg.Rounds)
		}
	}
}

func TestHotFileRereadEveryRound(t *testing.T) {
	cfg := small()
	w := New(cfg)
	s := w.Threads(sim.NewRNG(1), sim.NewRNG(2))[0]
	var op workload.Op
	fileReads := 0
	for s.Next(&op) {
		if op.Kind == workload.OpAccess && w.file.Contains(op.VPN) {
			fileReads++
		}
	}
	// Thread 0 reads its cold share once plus its hot share every round.
	coldShare := cfg.FilePages / cfg.Threads
	hotShare := cfg.HotFilePages / cfg.Threads
	want := coldShare + (cfg.Rounds-1)*hotShare
	if fileReads != want {
		t.Fatalf("file reads = %d, want %d", fileReads, want)
	}
}

func TestFootprint(t *testing.T) {
	cfg := small()
	w := New(cfg)
	if w.FootprintPages() != cfg.AnonPages+cfg.FilePages {
		t.Fatalf("footprint = %d", w.FootprintPages())
	}
}
