package workload

import (
	"mglrusim/internal/pagetable"
	"mglrusim/internal/zram"
)

// DefaultRegionPTEs is the page-table region fanout used by the scaled
// workloads. Real PMDs cover 512 PTEs; at ~1/1000 footprint scale, 64-PTE
// regions keep the region count (and with it the bloom-filter dynamics)
// proportional to the paper's systems.
const DefaultRegionPTEs = 64

// Segment is one mapped extent of a workload address space.
type Segment struct {
	Name  string
	Base  pagetable.VPN
	Pages int
	File  bool
	Class zram.ContentClass
}

// Contains reports whether vpn falls inside the segment.
func (s Segment) Contains(vpn pagetable.VPN) bool {
	return vpn >= s.Base && vpn < s.Base+pagetable.VPN(s.Pages)
}

// End returns the first VPN past the segment.
func (s Segment) End() pagetable.VPN { return s.Base + pagetable.VPN(s.Pages) }

// Page returns the i-th page of the segment.
func (s Segment) Page(i int) pagetable.VPN {
	if i < 0 || i >= s.Pages {
		panic("workload: segment page out of range")
	}
	return s.Base + pagetable.VPN(i)
}

// PageOfByte returns the page containing byte offset off, given elemSize
// bytes per element — convenience for array-like segments.
func (s Segment) PageOfByte(off int64) pagetable.VPN {
	return s.Page(int(off / pagetable.PageSize))
}

// AddrSpace builds a segmented address-space layout with region-aligned
// segments separated by hole regions — the "mapped but unallocated
// regions" that make naive linear page-table scans wasteful (§III-B).
type AddrSpace struct {
	regionPTEs int
	segs       []Segment
	next       pagetable.VPN
}

// NewAddrSpace starts a layout with the given region fanout.
func NewAddrSpace(regionPTEs int) *AddrSpace {
	if regionPTEs <= 0 {
		regionPTEs = DefaultRegionPTEs
	}
	return &AddrSpace{regionPTEs: regionPTEs}
}

// Add appends a segment of pages pages, aligned to a region boundary and
// preceded by one hole region.
func (a *AddrSpace) Add(name string, pages int, file bool, class zram.ContentClass) Segment {
	if pages <= 0 {
		panic("workload: segment needs pages")
	}
	r := pagetable.VPN(a.regionPTEs)
	// Leave a hole region, then align.
	base := ((a.next + r) + r - 1) / r * r
	seg := Segment{Name: name, Base: base, Pages: pages, File: file, Class: class}
	a.segs = append(a.segs, seg)
	a.next = seg.End()
	return seg
}

// RegionPTEs reports the region fanout.
func (a *AddrSpace) RegionPTEs() int { return a.regionPTEs }

// Regions reports how many regions the whole span needs.
func (a *AddrSpace) Regions() int {
	r := pagetable.VPN(a.regionPTEs)
	return int((a.next + r - 1) / r)
}

// FootprintPages reports the total mapped pages.
func (a *AddrSpace) FootprintPages() int {
	n := 0
	for _, s := range a.segs {
		n += s.Pages
	}
	return n
}

// Map installs all segments into t.
func (a *AddrSpace) Map(t *pagetable.Table) {
	for _, s := range a.segs {
		t.MapRange(s.Base, s.Pages, s.File)
	}
}

// ClassOf reports the content class for vpn (defaulting to structured for
// holes, which are never swapped anyway).
func (a *AddrSpace) ClassOf(vpn int64) zram.ContentClass {
	for _, s := range a.segs {
		if s.Contains(pagetable.VPN(vpn)) {
			return s.Class
		}
	}
	return zram.ClassStructured
}

// Segments exposes the layout for tests.
func (a *AddrSpace) Segments() []Segment { return a.segs }
