// Package pagerank models PageRank from the GAP benchmark suite, the
// paper's graph-processing workload: iterations of parallelized sparse
// matrix-vector multiplication over a power-law graph, with a barrier at
// the end of every iteration.
//
// The properties the paper's analysis depends on (§V-B) are preserved:
// per-thread work varies with the degree of owned vertices, so iteration
// barriers wait on hub-owning stragglers; neighbour-score reads are
// irregular accesses across the whole rank array; and the edge array is
// streamed sequentially. This is why PageRank's runtime decorrelates from
// its total fault count — a few critical faults on the straggler's pages
// matter more than the aggregate rate.
package pagerank

import (
	"mglrusim/internal/graph"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
	"mglrusim/internal/zram"
)

// Config sizes the workload.
type Config struct {
	// Graph parameterizes the synthetic power-law graph.
	Graph graph.Config
	// Iterations of PageRank.
	Iterations int
	// Threads is the compute parallelism (the paper uses 12).
	Threads int
	// ScoresPerPage is how many vertex scores share one (scaled) page.
	ScoresPerPage int
	// RowPtrPerPage and EdgesPerPage control index/edge array density.
	RowPtrPerPage, EdgesPerPage int
	// EdgeCPU is compute per edge; VertexCPU per vertex.
	EdgeCPU, VertexCPU sim.Duration
	// GraphSeed fixes the generated graph across trials.
	GraphSeed uint64
	// RegionPTEs is the page-table region fanout.
	RegionPTEs int
}

// DefaultConfig returns the calibrated scaled-down configuration.
func DefaultConfig() Config {
	return Config{
		Graph:         graph.Config{Vertices: 1 << 14, AvgDegree: 12, Alpha: 0.85},
		Iterations:    6,
		Threads:       12,
		ScoresPerPage: 64,
		RowPtrPerPage: 64,
		EdgesPerPage:  64,
		EdgeCPU:       12 * sim.Microsecond,
		VertexCPU:     40 * sim.Microsecond,
		GraphSeed:     0xC0FFEE,
		RegionPTEs:    workload.DefaultRegionPTEs,
	}
}

// PageRank is the workload.
type PageRank struct {
	cfg Config
	g   *graph.CSR
	as  *workload.AddrSpace

	prev, next, rowptr, col workload.Segment
}

// New generates the graph and lays out the address space.
func New(cfg Config) *PageRank {
	if cfg.Threads <= 0 || cfg.Iterations <= 0 {
		panic("pagerank: invalid config")
	}
	g := graph.Generate(cfg.Graph, sim.NewRNG(cfg.GraphSeed))
	w := &PageRank{cfg: cfg, g: g, as: workload.NewAddrSpace(cfg.RegionPTEs)}
	scorePages := (g.N + cfg.ScoresPerPage - 1) / cfg.ScoresPerPage
	rowPages := (g.N + 1 + cfg.RowPtrPerPage - 1) / cfg.RowPtrPerPage
	colPages := (g.Edges() + cfg.EdgesPerPage - 1) / cfg.EdgesPerPage
	w.prev = w.as.Add("rank-prev", scorePages, false, zram.ClassZeroHeavy)
	w.next = w.as.Add("rank-next", scorePages, false, zram.ClassZeroHeavy)
	w.rowptr = w.as.Add("rowptr", rowPages, false, zram.ClassStructured)
	w.col = w.as.Add("col", colPages, false, zram.ClassStructured)
	return w
}

// Name implements workload.Workload.
func (w *PageRank) Name() string { return "pagerank" }

// TableRegions implements workload.Workload.
func (w *PageRank) TableRegions() int { return w.as.Regions() }

// RegionPTEs reports the region fanout for the system builder.
func (w *PageRank) RegionPTEs() int { return w.as.RegionPTEs() }

// Layout implements workload.Workload.
func (w *PageRank) Layout(t *pagetable.Table) { w.as.Map(t) }

// FootprintPages implements workload.Workload.
func (w *PageRank) FootprintPages() int { return w.as.FootprintPages() }

// ContentClass implements workload.Workload.
func (w *PageRank) ContentClass(vpn int64) zram.ContentClass { return w.as.ClassOf(vpn) }

// Graph exposes the generated graph (for tests and tools).
func (w *PageRank) Graph() *graph.CSR { return w.g }

// vertexRange is a [from, to) span of vertex IDs.
type vertexRange struct{ from, to int }

// chunksPerThread is the dynamic-scheduling task granularity: each
// iteration's vertex space is split into this many chunks per thread and
// dealt from a shuffled deck, as OpenMP dynamic scheduling does in GAP.
// Which thread owns the hubs therefore varies per execution and per
// iteration — the straggler identity is a runtime accident, which is why
// PageRank's runtime decorrelates from its aggregate fault count.
const chunksPerThread = 4

// Threads implements workload.Workload. Per iteration, vertex chunks are
// dealt dynamically to threads; the degree mass each thread receives
// varies, producing barrier stragglers.
func (w *PageRank) Threads(plan, trial *sim.RNG) []workload.Stream {
	n := w.cfg.Threads
	// assignments[iter][tid] is the thread's vertex ranges that iteration.
	assignments := make([][][]vertexRange, w.cfg.Iterations)
	for it := range assignments {
		pieces := n * chunksPerThread
		if pieces > w.g.N {
			pieces = w.g.N
		}
		chunks := make([]vertexRange, pieces)
		for i := range chunks {
			chunks[i] = vertexRange{from: w.g.N * i / pieces, to: w.g.N * (i + 1) / pieces}
		}
		trial.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
		assignments[it] = make([][]vertexRange, n)
		for i, c := range chunks {
			assignments[it][i%n] = append(assignments[it][i%n], c)
		}
	}
	streams := make([]workload.Stream, n)
	for tid := 0; tid < n; tid++ {
		perIter := make([][]vertexRange, w.cfg.Iterations)
		for it := range perIter {
			perIter[it] = assignments[it][tid]
		}
		streams[tid] = &stream{w: w, ranges: perIter, lastCol: -1}
	}
	return streams
}

// stream emits one thread's accesses across all iterations.
type stream struct {
	w      *PageRank
	ranges [][]vertexRange // per iteration

	iter      int
	ri        int   // range index within the iteration
	v         int   // current vertex (absolute ID)
	vset      bool  // v initialized for the current range
	e         int64 // current edge index within v
	started   bool  // emitted this vertex's rowptr access yet
	lastCol   pagetable.VPN
	atBarrier bool
}

// scorePage maps a vertex to its rank-array page within seg.
func (s *stream) scorePage(seg workload.Segment, v int) pagetable.VPN {
	return seg.Page(v / s.w.cfg.ScoresPerPage)
}

// Next implements workload.Stream. Per vertex: read its rowptr page,
// write its next-rank page, then stream col pages while reading the
// prev-rank page of every neighbour.
func (s *stream) Next(op *workload.Op) bool {
	w := s.w
	for {
		if s.iter >= w.cfg.Iterations {
			return false
		}
		ranges := s.ranges[s.iter]
		// Advance to the next non-exhausted range.
		for s.ri < len(ranges) {
			if !s.vset {
				s.v = ranges[s.ri].from
				s.vset = true
			}
			if s.v < ranges[s.ri].to {
				break
			}
			s.ri++
			s.vset = false
		}
		if s.ri >= len(ranges) {
			if !s.atBarrier {
				s.atBarrier = true
				*op = workload.Op{Kind: workload.OpBarrier}
				return true
			}
			s.atBarrier = false
			s.iter++
			s.ri = 0
			s.vset = false
			s.started = false
			s.lastCol = -1
			continue
		}
		if !s.started {
			s.started = true
			s.e = w.g.RowPtr[s.v]
			// Row pointer read + next-rank write for this vertex.
			*op = workload.Op{
				Kind:  workload.OpAccess,
				VPN:   w.rowptr.Page(s.v / w.cfg.RowPtrPerPage),
				CPU:   w.cfg.VertexCPU,
				Write: false,
			}
			return true
		}
		// Rank arrays swap roles every iteration, as real PageRank does.
		prevSeg, nextSeg := w.prev, w.next
		if s.iter%2 == 1 {
			prevSeg, nextSeg = nextSeg, prevSeg
		}
		if s.e >= w.g.RowPtr[s.v+1] {
			// Vertex done: write its next-rank entry, advance.
			vpn := s.scorePage(nextSeg, s.v)
			s.v++
			s.started = false
			*op = workload.Op{Kind: workload.OpAccess, VPN: vpn, Write: true, CPU: w.cfg.VertexCPU}
			return true
		}
		// Stream the col page (emit only on page change), then the
		// neighbour's prev-rank page.
		colPage := w.col.Page(int(s.e) / w.cfg.EdgesPerPage)
		if colPage != s.lastCol {
			s.lastCol = colPage
			*op = workload.Op{Kind: workload.OpAccess, VPN: colPage, CPU: w.cfg.EdgeCPU}
			return true
		}
		u := int(w.g.Col[s.e])
		s.e++
		*op = workload.Op{Kind: workload.OpAccess, VPN: s.scorePage(prevSeg, u), CPU: w.cfg.EdgeCPU}
		return true
	}
}

var _ workload.Workload = (*PageRank)(nil)

// Segments implements workload.Segmented.
func (w *PageRank) Segments() []workload.Segment { return w.as.Segments() }
