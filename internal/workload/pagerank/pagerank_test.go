package pagerank

import (
	"testing"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
)

func small() Config {
	cfg := DefaultConfig()
	cfg.Graph.Vertices = 2048
	cfg.Graph.AvgDegree = 8
	cfg.Iterations = 3
	cfg.Threads = 4
	return cfg
}

func drain(t *testing.T, s workload.Stream, tb *pagetable.Table) (accesses, barriers, writes int, cpu int64) {
	t.Helper()
	var op workload.Op
	for s.Next(&op) {
		switch op.Kind {
		case workload.OpAccess:
			accesses++
			cpu += op.CPU
			if op.Write {
				writes++
			}
			if !tb.PTE(op.VPN).Mapped() {
				t.Fatalf("access to unmapped vpn %d", op.VPN)
			}
		case workload.OpBarrier:
			barriers++
		}
	}
	return
}

func TestStreamsStayInMappedSpace(t *testing.T) {
	w := New(small())
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000)) {
		drain(t, s, tb)
	}
}

func TestBarrierPerIteration(t *testing.T) {
	cfg := small()
	w := New(cfg)
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	for i, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000)) {
		_, b, _, _ := drain(t, s, tb)
		if b != cfg.Iterations {
			t.Fatalf("thread %d emitted %d barriers, want %d", i, b, cfg.Iterations)
		}
	}
}

func TestWorkSkewedByDegree(t *testing.T) {
	cfg := small()
	cfg.Threads = 8
	w := New(cfg)
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	var cpus []int64
	for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000)) {
		_, _, _, c := drain(t, s, tb)
		cpus = append(cpus, c)
	}
	min, max := cpus[0], cpus[0]
	for _, c := range cpus {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// The straggler property: per-thread work must vary meaningfully —
	// this is the opposite of the TPC-H balance assertion.
	if float64(max) < 1.15*float64(min) {
		t.Fatalf("per-thread work suspiciously balanced: min=%d max=%d", min, max)
	}
}

func TestEveryVertexWrittenOncePerIteration(t *testing.T) {
	cfg := small()
	w := New(cfg)
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	writes := 0
	for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000)) {
		_, _, wr, _ := drain(t, s, tb)
		writes += wr
	}
	want := cfg.Graph.Vertices * cfg.Iterations
	if writes != want {
		t.Fatalf("writes = %d, want %d (one per vertex per iteration)", writes, want)
	}
}

func TestRankArraysAlternate(t *testing.T) {
	cfg := small()
	cfg.Iterations = 2
	w := New(cfg)
	s := w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000))[0].(*stream)
	var op workload.Op
	wroteTo := map[int]map[bool]bool{0: {}, 1: {}}
	iter := 0
	for s.Next(&op) {
		if op.Kind == workload.OpBarrier {
			iter++
			continue
		}
		if op.Kind == workload.OpAccess && op.Write && iter < 2 {
			wroteTo[iter][w.next.Contains(op.VPN)] = true
		}
	}
	if !wroteTo[0][true] {
		t.Fatal("iteration 0 should write the next array")
	}
	if !wroteTo[1][false] {
		t.Fatal("iteration 1 should write the prev array (swapped)")
	}
}

func TestGraphFixedAcrossTrials(t *testing.T) {
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	if a.Graph().Edges() != b.Graph().Edges() {
		t.Fatal("graph differs across constructions")
	}
	for i := range a.Graph().Col {
		if a.Graph().Col[i] != b.Graph().Col[i] {
			t.Fatal("graph content differs across constructions")
		}
	}
}

func TestAccessVolumeScalesWithEdges(t *testing.T) {
	cfg := small()
	w := New(cfg)
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	total := 0
	for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000)) {
		a, _, _, _ := drain(t, s, tb)
		total += a
	}
	edges := w.Graph().Edges() * cfg.Iterations
	if total < edges {
		t.Fatalf("accesses %d below edge visits %d", total, edges)
	}
	if total > edges*3 {
		t.Fatalf("accesses %d excessive vs edges %d", total, edges)
	}
}

func TestChunkAssignmentVariesPerTrialAndIteration(t *testing.T) {
	cfg := small()
	w := New(cfg)
	firstVertexOps := func(trial uint64) []workload.Op {
		var ops []workload.Op
		var op workload.Op
		s := w.Threads(sim.NewRNG(1), sim.NewRNG(trial))[0]
		for i := 0; i < 50 && s.Next(&op); i++ {
			ops = append(ops, op)
		}
		return ops
	}
	a, b := firstVertexOps(3), firstVertexOps(4)
	same := true
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("dynamic chunk dealing did not vary with trial seed")
	}
}

func TestEveryVertexProcessedExactlyOncePerIteration(t *testing.T) {
	cfg := small()
	cfg.Iterations = 1
	w := New(cfg)
	// The union of all threads' writes covers every vertex exactly once
	// regardless of the dealt assignment.
	writes := map[pagetable.VPN]int{}
	var op workload.Op
	for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(9)) {
		for s.Next(&op) {
			if op.Kind == workload.OpAccess && op.Write {
				writes[op.VPN]++
			}
		}
	}
	total := 0
	for _, c := range writes {
		total += c
	}
	if total != cfg.Graph.Vertices {
		t.Fatalf("vertex writes = %d, want %d", total, cfg.Graph.Vertices)
	}
}
