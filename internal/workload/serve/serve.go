// Package serve models a production serving fleet's front-end node: a
// static-object server streaming file-backed content under live traffic.
// It is the page-cache counterpart of the YCSB serving workload — where
// YCSB stresses an anonymous heap, serve stresses the file-vs-anon
// reclaim split: the object store is file-backed (read through the page
// cache, written back on upload), while the metadata index and response
// scratch buffers are anonymous memory competing for the same frames.
//
// Traffic has the structure production request logs show:
//
//   - Zipf-over-objects skew: a scrambled-zipfian popularity profile over
//     the object catalog (hot objects scattered across the store).
//   - Diurnal load swings: mean think time between requests follows a
//     sinusoidal day/night profile over the run.
//   - Flash-crowd bursts: short windows where arrivals spike and traffic
//     concentrates on a small trending set, chosen per execution plan.
//   - Working-set phase shifts: the popularity mapping rotates at phase
//     boundaries, so yesterday's hot objects go cold and a disjoint set
//     heats up — the refault-imbalance stimulus the pidctl tier gain
//     responds to.
//
// Everything is deterministic per seed pair: the plan RNG fixes burst
// placement and trending sets, the trial RNG drives per-thread request
// draws, and identical seeds reproduce the request stream byte for byte
// (FuzzServeWorkload asserts this).
package serve

import (
	"math"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
	"mglrusim/internal/zram"
)

// Config sizes the workload.
type Config struct {
	// Objects is the catalog size.
	Objects int
	// ObjPages is pages per object; a request streams them sequentially.
	ObjPages int
	// Requests is the measured request count across all threads.
	Requests int
	// Threads is the server worker count.
	Threads int
	// Theta is the zipfian skew over objects (YCSB default 0.99).
	Theta float64
	// WriteFrac is the fraction of requests that mutate the object
	// (uploads/edits): they dirty file pages and so drive writeback.
	WriteFrac float64
	// Phases is how many working-set phases the run is split into; the
	// popularity mapping rotates at each boundary. 1 disables shifts.
	Phases int
	// DiurnalAmp is the think-time swing amplitude in [0, 1); 0 flattens
	// the day/night profile.
	DiurnalAmp float64
	// DiurnalCycles is how many full day/night cycles the run spans.
	DiurnalCycles float64
	// BurstCount flash-crowd windows are placed by the execution plan;
	// BurstLen is each window's width as a fraction of the run, and
	// BurstHot is the trending-set size traffic concentrates on.
	BurstCount int
	BurstLen   float64
	BurstHot   int
	// Sessions is the in-process session table, in pages — the large anon
	// heap every serving node carries. Each request reads and updates one
	// session, drawn with SessionTheta zipfian skew: a few hot sessions
	// stay resident while the long cold tail is the reclaimable anon
	// capacity file-tier protection can shift eviction pressure onto.
	// 0 disables the segment.
	Sessions     int
	SessionTheta float64
	// ThinkCPU is the baseline mean inter-request compute; ServeCPU is
	// per-page compute while streaming an object.
	ThinkCPU, ServeCPU sim.Duration
	// RegionPTEs is the page-table region fanout.
	RegionPTEs int
}

// DefaultConfig returns the calibrated scaled-down configuration.
func DefaultConfig() Config {
	return Config{
		Objects:       3000,
		ObjPages:      4,
		Requests:      40000,
		Threads:       4,
		Theta:         workload.YCSBTheta,
		WriteFrac:     0.08,
		Phases:        3,
		DiurnalAmp:    0.5,
		DiurnalCycles: 2,
		BurstCount:    3,
		BurstLen:      0.04,
		BurstHot:      24,
		Sessions:      5000,
		SessionTheta:  0.8,
		ThinkCPU:      40 * sim.Microsecond,
		ServeCPU:      15 * sim.Microsecond,
		RegionPTEs:    workload.DefaultRegionPTEs,
	}
}

// idxEntriesPerPage is how many object-metadata entries share one index
// page (a 64-byte entry per 4 KiB page).
const idxEntriesPerPage = 64

// scratchPerThread is each worker's private response-assembly buffer.
const scratchPerThread = 48

// Serve is the workload.
type Serve struct {
	cfg      Config
	as       *workload.AddrSpace
	objects  workload.Segment
	index    workload.Segment
	sessions workload.Segment
	scratch  workload.Segment
}

// New builds the workload.
func New(cfg Config) *Serve {
	if cfg.Objects <= 0 || cfg.ObjPages <= 0 || cfg.Requests <= 0 || cfg.Threads <= 0 {
		panic("serve: invalid config")
	}
	if cfg.Phases <= 0 {
		cfg.Phases = 1
	}
	if cfg.BurstHot <= 0 || cfg.BurstHot > cfg.Objects {
		cfg.BurstHot = min(24, cfg.Objects)
	}
	if cfg.Sessions < 0 {
		cfg.Sessions = 0
	}
	if cfg.SessionTheta <= 0 {
		cfg.SessionTheta = 0.8
	}
	w := &Serve{cfg: cfg, as: workload.NewAddrSpace(cfg.RegionPTEs)}
	idxPages := (cfg.Objects + idxEntriesPerPage - 1) / idxEntriesPerPage
	// The object store is the file-backed segment: served media,
	// incompressible. Index and scratch are the anon competitors.
	w.objects = w.as.Add("objects", cfg.Objects*cfg.ObjPages, true, zram.ClassRandom)
	w.index = w.as.Add("index", idxPages, false, zram.ClassStructured)
	if cfg.Sessions > 0 {
		w.sessions = w.as.Add("sessions", cfg.Sessions, false, zram.ClassStructured)
	}
	w.scratch = w.as.Add("scratch", cfg.Threads*scratchPerThread, false, zram.ClassZeroHeavy)
	return w
}

// Name implements workload.Workload.
func (w *Serve) Name() string { return "serve" }

// TableRegions implements workload.Workload.
func (w *Serve) TableRegions() int { return w.as.Regions() }

// RegionPTEs reports the region fanout for the system builder.
func (w *Serve) RegionPTEs() int { return w.as.RegionPTEs() }

// Layout implements workload.Workload.
func (w *Serve) Layout(t *pagetable.Table) { w.as.Map(t) }

// FootprintPages implements workload.Workload.
func (w *Serve) FootprintPages() int { return w.as.FootprintPages() }

// ContentClass implements workload.Workload.
func (w *Serve) ContentClass(vpn int64) zram.ContentClass { return w.as.ClassOf(vpn) }

// Segments implements workload.Segmented.
func (w *Serve) Segments() []workload.Segment { return w.as.Segments() }

// burst is one flash-crowd window with its trending set.
type burst struct {
	from, to float64 // run-progress interval
	hot      []int64 // trending object ids
}

// Threads implements workload.Workload. Burst placement and trending
// sets come from the plan RNG — part of the workload's identity, shared
// by all threads — while per-thread draws (object choice, write mix,
// think jitter) come from trial streams, the way connection dispatch
// varies across executions.
func (w *Serve) Threads(plan, trial *sim.RNG) []workload.Stream {
	planRNG := plan.Stream(31)
	bursts := make([]burst, w.cfg.BurstCount)
	for i := range bursts {
		span := 1 - w.cfg.BurstLen
		if span < 0 {
			span = 0
		}
		start := planRNG.Float64() * span
		b := burst{from: start, to: start + w.cfg.BurstLen,
			hot: make([]int64, w.cfg.BurstHot)}
		for j := range b.hot {
			b.hot[j] = planRNG.Int63n(int64(w.cfg.Objects))
		}
		bursts[i] = b
	}

	n := w.cfg.Threads
	streams := make([]workload.Stream, n)
	for tid := 0; tid < n; tid++ {
		reqs := w.cfg.Requests*(tid+1)/n - w.cfg.Requests*tid/n
		st := &stream{
			w:      w,
			tid:    tid,
			zipf:   workload.NewScrambledZipfian(int64(w.cfg.Objects), w.cfg.Theta),
			rng:    trial.Stream(uint64(tid) + 911),
			bursts: bursts,
			total:  reqs,
		}
		if w.cfg.Sessions > 0 {
			st.sessZipf = workload.NewScrambledZipfian(int64(w.cfg.Sessions), w.cfg.SessionTheta)
		}
		streams[tid] = st
	}
	return streams
}

// stream is one worker's request loop.
type stream struct {
	w        *Serve
	tid      int
	zipf     *workload.Zipfian
	sessZipf *workload.Zipfian
	rng      *sim.RNG
	bursts   []burst

	total  int // requests this thread will issue
	issued int

	obj     int64
	isWrite bool
	page    int // next object page to stream
	// step: 0 think, 1 ReqStart, 2 index access, 3 session read+update,
	// 4 object pages, 5 scratch write, 6 ReqEnd.
	step int
}

// progress is the thread's position in the run, in [0, 1).
func (s *stream) progress() float64 {
	return float64(s.issued) / float64(s.total)
}

// inBurst reports the active flash-crowd window, if any.
func (s *stream) inBurst(p float64) *burst {
	for i := range s.bursts {
		if p >= s.bursts[i].from && p < s.bursts[i].to {
			return &s.bursts[i]
		}
	}
	return nil
}

// pickObject draws the request's object: trending set during a burst,
// else the zipfian rotated by the current working-set phase. The result
// is always in [0, Objects) — phase rotation is a modular shift, so a
// boundary crossing can never push an id out of range.
func (s *stream) pickObject(p float64, b *burst) int64 {
	if b != nil && s.rng.Float64() < 0.7 {
		return b.hot[s.rng.Int63n(int64(len(b.hot)))]
	}
	z := s.zipf.Next(s.rng)
	phase := int64(p * float64(s.w.cfg.Phases))
	if phase >= int64(s.w.cfg.Phases) {
		phase = int64(s.w.cfg.Phases) - 1
	}
	objs := int64(s.w.cfg.Objects)
	return (z + phase*(objs/int64(s.w.cfg.Phases))) % objs
}

// think is the diurnally-modulated inter-request compute; a flash crowd
// collapses it (arrival spike).
func (s *stream) think(p float64, b *burst) sim.Duration {
	d := float64(s.w.cfg.ThinkCPU) *
		(1 + s.w.cfg.DiurnalAmp*math.Sin(2*math.Pi*p*s.w.cfg.DiurnalCycles))
	if b != nil {
		d /= 8
	}
	// ±25% per-request jitter.
	d *= 0.75 + 0.5*s.rng.Float64()
	if d < 1 {
		d = 1
	}
	return sim.Duration(d)
}

// Next implements workload.Stream.
func (s *stream) Next(op *workload.Op) bool {
	w := s.w
	if s.issued >= s.total && s.step == 0 {
		return false
	}
	switch s.step {
	case 0:
		p := s.progress()
		b := s.inBurst(p)
		s.obj = s.pickObject(p, b)
		s.isWrite = s.rng.Float64() < w.cfg.WriteFrac
		s.page = 0
		*op = workload.Op{Kind: workload.OpCompute, CPU: s.think(p, b)}
		s.step = 1
	case 1:
		class := workload.ReqRead
		if s.isWrite {
			class = workload.ReqWrite
		}
		*op = workload.Op{Kind: workload.OpReqStart, Class: class}
		s.step = 2
	case 2:
		// Metadata lookup; an upload also rewrites the entry.
		vpn := w.index.Page(int(s.obj) / idxEntriesPerPage)
		*op = workload.Op{Kind: workload.OpAccess, VPN: vpn, Write: s.isWrite, CPU: w.cfg.ServeCPU / 4}
		s.step = 3
	case 3:
		if s.sessZipf == nil {
			s.step = 4
			return s.Next(op)
		}
		// Session read+update: the request's client session is looked up
		// and its last-seen state rewritten, dirtying one anon page from
		// the big session table.
		vpn := w.sessions.Page(int(s.sessZipf.Next(s.rng)))
		*op = workload.Op{Kind: workload.OpAccess, VPN: vpn, Write: true, CPU: w.cfg.ServeCPU / 4}
		s.step = 4
	case 4:
		// Stream the object's pages in file order.
		vpn := w.objects.Page(int(s.obj)*w.cfg.ObjPages + s.page)
		*op = workload.Op{Kind: workload.OpAccess, VPN: vpn, Write: s.isWrite, CPU: w.cfg.ServeCPU}
		s.page++
		if s.page == w.cfg.ObjPages {
			s.step = 5
		}
	case 5:
		// Response assembly in the worker's private scratch ring.
		vpn := w.scratch.Page(s.tid*scratchPerThread + s.issued%scratchPerThread)
		*op = workload.Op{Kind: workload.OpAccess, VPN: vpn, Write: true, CPU: w.cfg.ServeCPU / 4}
		s.step = 6
	case 6:
		*op = workload.Op{Kind: workload.OpReqEnd}
		s.issued++
		s.step = 0
	}
	return true
}

var _ workload.Workload = (*Serve)(nil)
var _ workload.Segmented = (*Serve)(nil)
