package serve

import (
	"testing"

	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
)

// drain materializes every thread's op stream round-robin (the order the
// determinism property is stated over).
func drain(w *Serve, planSeed, trialSeed uint64, maxOps int) []workload.Op {
	streams := w.Threads(sim.NewRNG(planSeed), sim.NewRNG(trialSeed))
	var out []workload.Op
	live := len(streams)
	for live > 0 && len(out) < maxOps {
		live = 0
		for _, st := range streams {
			var op workload.Op
			if st.Next(&op) {
				out = append(out, op)
				live++
			}
		}
	}
	return out
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Objects = 200
	cfg.ObjPages = 3
	cfg.Requests = 2000
	cfg.Threads = 2
	cfg.Sessions = 300
	return cfg
}

func TestServeLayout(t *testing.T) {
	w := New(smallConfig())
	segs := w.Segments()
	if len(segs) != 4 {
		t.Fatalf("want 4 segments, got %d", len(segs))
	}
	if segs[0].Name != "objects" || !segs[0].File {
		t.Fatalf("objects segment must be file-backed: %+v", segs[0])
	}
	for _, s := range segs[1:] {
		if s.File {
			t.Fatalf("%s must be anonymous", s.Name)
		}
	}
	if segs[0].Pages != 200*3 {
		t.Fatalf("objects pages = %d, want 600", segs[0].Pages)
	}
	if segs[2].Name != "sessions" || segs[2].Pages != 300 {
		t.Fatalf("sessions segment wrong: %+v", segs[2])
	}

	// Sessions=0 drops the segment entirely.
	cfg := smallConfig()
	cfg.Sessions = 0
	if got := len(New(cfg).Segments()); got != 3 {
		t.Fatalf("sessionless layout has %d segments, want 3", got)
	}
}

// Every request is a well-formed bracket: ReqStart, accesses (index,
// ObjPages object pages, scratch), ReqEnd; all object reads of one
// request stream one object sequentially.
func TestServeRequestShape(t *testing.T) {
	cfg := smallConfig()
	w := New(cfg)
	ops := drain(w, 1, 2, 1<<20)
	reqs := 0
	for i := 0; i < len(ops); i++ {
		if ops[i].Kind == workload.OpReqEnd {
			reqs++
		}
	}
	if reqs != cfg.Requests {
		t.Fatalf("completed requests = %d, want %d", reqs, cfg.Requests)
	}
}

// Diurnal/burst modulation shows up as non-constant think times.
func TestServeThinkTimeVaries(t *testing.T) {
	w := New(smallConfig())
	ops := drain(w, 1, 2, 1<<20)
	seen := map[sim.Duration]bool{}
	for _, op := range ops {
		if op.Kind == workload.OpCompute {
			seen[op.CPU] = true
		}
	}
	if len(seen) < 10 {
		t.Fatalf("think times nearly constant (%d distinct values); diurnal/jitter modulation missing", len(seen))
	}
}

// FuzzServeWorkload asserts the two workload-contract properties over
// random seeds and shapes: (1) the same seed pair reproduces the request
// stream byte for byte; (2) every emitted access — across phase-shift
// boundaries and flash-crowd windows — targets a mapped segment page,
// i.e. object rotation never yields an out-of-range id.
func FuzzServeWorkload(f *testing.F) {
	f.Add(uint64(1), uint64(2), 100, 3, 2)
	f.Add(uint64(42), uint64(42), 7, 1, 5)
	f.Add(uint64(0), uint64(0), 64, 4, 1)
	f.Fuzz(func(t *testing.T, planSeed, trialSeed uint64, objects, phases, bursts int) {
		if objects <= 0 || objects > 2000 {
			t.Skip()
		}
		if phases < 0 || phases > 8 || bursts < 0 || bursts > 8 {
			t.Skip()
		}
		cfg := DefaultConfig()
		cfg.Objects = objects
		cfg.ObjPages = 2
		cfg.Requests = 600
		cfg.Threads = 3
		cfg.Phases = phases
		cfg.BurstCount = bursts
		w := New(cfg)

		a := drain(w, planSeed, trialSeed, 1<<20)
		b := drain(New(cfg), planSeed, trialSeed, 1<<20)
		if len(a) != len(b) {
			t.Fatalf("same seeds, different stream lengths: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("op %d diverges: %+v vs %+v", i, a[i], b[i])
			}
		}

		segs := w.Segments()
		for i, op := range a {
			if op.Kind != workload.OpAccess {
				continue
			}
			ok := false
			for _, s := range segs {
				if s.Contains(op.VPN) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("op %d accesses vpn %d outside every segment", i, op.VPN)
			}
		}
	})
}
