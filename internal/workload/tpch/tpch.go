// Package tpch models TPC-H running under Spark-SQL, the paper's data-
// warehousing workload. The model preserves the structural properties the
// paper's analysis leans on (§V-B): execution is a sequence of highly
// parallel stages separated by barriers, work per thread within a stage is
// balanced, and access patterns are regular — large sequential scans over
// partitioned tables plus hash-join probes into a bounded build region.
// Those properties are what make TPC-H runtime almost perfectly linear in
// its fault count (r² > 0.98 in the paper).
package tpch

import (
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
	"mglrusim/internal/zram"
)

// Config sizes the workload (pages are the scaled unit; defaults give a
// ~15 "GB-equivalent" footprint at 1/1000 scale).
type Config struct {
	// Table sizes in pages.
	LineitemPages, OrdersPages, CustomerPages int
	// HashPages is the join build/scratch region.
	HashPages int
	// InputPages is file-backed input read once at startup.
	InputPages int
	// Queries is the number of queries in one execution.
	Queries int
	// Threads is the executor parallelism (the paper uses 12).
	Threads int
	// ProbesPerPage is hash probes issued per scanned lineitem page.
	ProbesPerPage int
	// ProbeTheta is the zipfian skew of probe targets within the hash
	// region (0 = uniform). Join keys are skewed in practice, which
	// creates the medium-hot page population whose retention separates
	// replacement policies.
	ProbeTheta float64
	// ScanCPU, ProbeCPU, WriteCPU are per-operation compute costs.
	ScanCPU, ProbeCPU, WriteCPU sim.Duration
	// RegionPTEs is the page-table region fanout.
	RegionPTEs int
}

// DefaultConfig returns the calibrated scaled-down configuration.
func DefaultConfig() Config {
	return Config{
		LineitemPages: 1900,
		OrdersPages:   480,
		CustomerPages: 140,
		HashPages:     1280,
		InputPages:    128,
		Queries:       6,
		Threads:       12,
		ProbesPerPage: 4,
		ProbeTheta:    0.85,
		ScanCPU:       4 * sim.Millisecond,
		ProbeCPU:      150 * sim.Microsecond,
		WriteCPU:      200 * sim.Microsecond,
		RegionPTEs:    workload.DefaultRegionPTEs,
	}
}

// TPCH is the workload.
type TPCH struct {
	cfg Config
	as  *workload.AddrSpace

	input, lineitem, orders, customer, hash workload.Segment
}

// New builds the workload from cfg.
func New(cfg Config) *TPCH {
	if cfg.Threads <= 0 || cfg.Queries <= 0 {
		panic("tpch: invalid config")
	}
	w := &TPCH{cfg: cfg, as: workload.NewAddrSpace(cfg.RegionPTEs)}
	w.input = w.as.Add("input", cfg.InputPages, true, zram.ClassStructured)
	w.lineitem = w.as.Add("lineitem", cfg.LineitemPages, false, zram.ClassStructured)
	w.orders = w.as.Add("orders", cfg.OrdersPages, false, zram.ClassStructured)
	w.customer = w.as.Add("customer", cfg.CustomerPages, false, zram.ClassStructured)
	w.hash = w.as.Add("hash", cfg.HashPages, false, zram.ClassZeroHeavy)
	return w
}

// Name implements workload.Workload.
func (w *TPCH) Name() string { return "tpch" }

// TableRegions implements workload.Workload.
func (w *TPCH) TableRegions() int { return w.as.Regions() }

// RegionPTEs reports the region fanout for the system builder.
func (w *TPCH) RegionPTEs() int { return w.as.RegionPTEs() }

// Layout implements workload.Workload.
func (w *TPCH) Layout(t *pagetable.Table) { w.as.Map(t) }

// FootprintPages implements workload.Workload.
func (w *TPCH) FootprintPages() int { return w.as.FootprintPages() }

// ContentClass implements workload.Workload.
func (w *TPCH) ContentClass(vpn int64) zram.ContentClass { return w.as.ClassOf(vpn) }

// pageRange is a [from, to) slice of a segment.
type pageRange struct{ from, to int }

// phase is one stage's per-thread work: a set of page ranges dealt to the
// thread by the (dynamic) task scheduler.
type phase struct {
	seg      workload.Segment
	ranges   []pageRange
	write    bool
	cpu      sim.Duration
	probes   int // probes into probeSeg per scanned page
	probeSeg workload.Segment
	probeWr  bool
	probeCPU sim.Duration
}

// subchunksPerThread is the task granularity: each stage is split into
// this many tasks per executor thread and dealt from a shuffled deck, as
// Spark's dynamic task scheduling does. Which thread processes which
// partition therefore varies per execution — a principal source of the
// paper's run-to-run variation.
const subchunksPerThread = 4

// deal splits [0, total) into n*subchunksPerThread tasks, shuffles them
// with the trial RNG, and deals them round-robin to n threads.
func deal(total, n int, trial *sim.RNG) [][]pageRange {
	pieces := n * subchunksPerThread
	if pieces > total {
		pieces = total
	}
	if pieces == 0 {
		return make([][]pageRange, n)
	}
	chunks := make([]pageRange, pieces)
	for i := range chunks {
		chunks[i] = pageRange{from: total * i / pieces, to: total * (i + 1) / pieces}
	}
	trial.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
	out := make([][]pageRange, n)
	for i, c := range chunks {
		out[i%n] = append(out[i%n], c)
	}
	return out
}

// chunk splits [0, total) into the tid-th of n near-equal chunks (static
// partitioning, used for thread-private regions like hash partitions).
func chunk(total, n, tid int) (from, to int) {
	from = total * tid / n
	to = total * (tid + 1) / n
	return from, to
}

// Threads implements workload.Workload: per-thread phase programs with a
// barrier after every stage, exactly one barrier count for all threads.
func (w *TPCH) Threads(plan, trial *sim.RNG) []workload.Stream {
	n := w.cfg.Threads
	// Per-query plan parameters come from the shared workload stream so
	// every trial runs the identical query mix.
	type queryPlan struct {
		frac   float64 // lineitem fraction scanned
		probes int
	}
	plans := make([]queryPlan, w.cfg.Queries)
	for q := range plans {
		plans[q] = queryPlan{
			frac:   0.55 + 0.45*plan.Float64(),
			probes: w.cfg.ProbesPerPage + plan.Intn(3),
		}
	}

	perThread := make([][]phase, n)
	addStage := func(seg workload.Segment, total int, mk func(tid int, rs []pageRange) phase) {
		assign := deal(total, n, trial)
		for tid := 0; tid < n; tid++ {
			perThread[tid] = append(perThread[tid], mk(tid, assign[tid]))
		}
	}

	// Startup: read the file-backed input once (buffered I/O).
	addStage(w.input, w.input.Pages, func(tid int, rs []pageRange) phase {
		return phase{seg: w.input, ranges: rs, cpu: w.cfg.ScanCPU}
	})
	for _, pl := range plans {
		li := int(float64(w.lineitem.Pages) * pl.frac)
		// Stage 1: scan+filter lineitem.
		addStage(w.lineitem, li, func(tid int, rs []pageRange) phase {
			return phase{seg: w.lineitem, ranges: rs, cpu: w.cfg.ScanCPU}
		})
		// Stage 2: build — scan orders, write the thread's hash partition.
		addStage(w.orders, w.orders.Pages, func(tid int, rs []pageRange) phase {
			hf, ht := chunk(w.hash.Pages, n, tid)
			return phase{
				seg: w.orders, ranges: rs, cpu: w.cfg.ScanCPU,
				probes: 2, probeSeg: workload.Segment{Name: "hashpart", Base: w.hash.Page(hf), Pages: ht - hf},
				probeWr: true, probeCPU: w.cfg.WriteCPU,
			}
		})
		// Stage 3: probe — rescan lineitem, skewed reads into the whole
		// hash region.
		probes := pl.probes
		addStage(w.lineitem, li, func(tid int, rs []pageRange) phase {
			return phase{
				seg: w.lineitem, ranges: rs, cpu: w.cfg.ScanCPU,
				probes: probes, probeSeg: w.hash, probeCPU: w.cfg.ProbeCPU,
			}
		})
		// Stage 4: aggregate — scan customer, then the hash region.
		addStage(w.customer, w.customer.Pages, func(tid int, rs []pageRange) phase {
			return phase{seg: w.customer, ranges: rs, cpu: w.cfg.ScanCPU}
		})
		addStage(w.hash, w.hash.Pages, func(tid int, rs []pageRange) phase {
			return phase{seg: w.hash, ranges: rs, write: true, cpu: w.cfg.ScanCPU}
		})
	}

	streams := make([]workload.Stream, n)
	for tid := 0; tid < n; tid++ {
		var zipf *workload.Zipfian
		if w.cfg.ProbeTheta > 0 {
			// Plain (unscrambled) zipfian: hot join keys cluster at the
			// front of the build region, as hash-partitioned builds
			// co-locate popular rows. The clustering is what gives the
			// aging walk's region-level filters something to find.
			zipf = workload.NewZipfian(int64(w.hash.Pages), w.cfg.ProbeTheta)
		}
		streams[tid] = &stream{phases: perThread[tid], rng: plan.Stream(uint64(tid) + 101), zipf: zipf}
	}
	return streams
}

// stream walks a thread's phase program.
type stream struct {
	phases    []phase
	rng       *sim.RNG
	zipf      *workload.Zipfian // skewed probe targets over the hash region
	pi        int               // phase index
	ri        int               // range index within the phase
	pos       int               // page offset within the range
	probeLeft int
	atBarrier bool
}

// probeTarget picks a page within seg: zipfian-skewed when probing the
// full hash region, uniform for thread-private partitions.
func (s *stream) probeTarget(seg workload.Segment) pagetable.VPN {
	if s.zipf != nil && seg.Pages > 64 {
		return seg.Page(int(s.zipf.Next(s.rng)) % seg.Pages)
	}
	return seg.Page(s.rng.Intn(seg.Pages))
}

// Next implements workload.Stream.
func (s *stream) Next(op *workload.Op) bool {
	for {
		if s.pi >= len(s.phases) {
			return false
		}
		ph := &s.phases[s.pi]
		if s.probeLeft > 0 {
			s.probeLeft--
			*op = workload.Op{
				Kind:  workload.OpAccess,
				VPN:   s.probeTarget(ph.probeSeg),
				Write: ph.probeWr,
				CPU:   ph.probeCPU,
			}
			return true
		}
		for s.ri < len(ph.ranges) && s.pos >= ph.ranges[s.ri].to-ph.ranges[s.ri].from {
			s.ri++
			s.pos = 0
		}
		if s.ri >= len(ph.ranges) {
			if !s.atBarrier {
				s.atBarrier = true
				*op = workload.Op{Kind: workload.OpBarrier}
				return true
			}
			s.atBarrier = false
			s.pi++
			s.ri, s.pos = 0, 0
			continue
		}
		page := ph.ranges[s.ri].from + s.pos
		s.pos++
		if ph.probeSeg.Pages > 0 {
			s.probeLeft = ph.probes
		}
		*op = workload.Op{
			Kind:  workload.OpAccess,
			VPN:   ph.seg.Page(page),
			Write: ph.write,
			CPU:   ph.cpu,
		}
		return true
	}
}

var _ workload.Workload = (*TPCH)(nil)

// Segments implements workload.Segmented.
func (w *TPCH) Segments() []workload.Segment { return w.as.Segments() }
