package tpch

import (
	"testing"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
)

// drain runs a stream to completion, returning access count, barrier
// count, and the set-of-pages bounds check result against the table.
func drain(t *testing.T, s workload.Stream, tb *pagetable.Table) (accesses, barriers int) {
	t.Helper()
	var op workload.Op
	for s.Next(&op) {
		switch op.Kind {
		case workload.OpAccess:
			accesses++
			if !tb.PTE(op.VPN).Mapped() {
				t.Fatalf("access to unmapped vpn %d", op.VPN)
			}
		case workload.OpBarrier:
			barriers++
		}
	}
	return accesses, barriers
}

func TestStreamsStayInMappedSpace(t *testing.T) {
	w := New(DefaultConfig())
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000)) {
		drain(t, s, tb)
	}
}

func TestAllThreadsSameBarrierCount(t *testing.T) {
	w := New(DefaultConfig())
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	streams := w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000))
	if len(streams) != 12 {
		t.Fatalf("threads = %d, want 12", len(streams))
	}
	var want int
	for i, s := range streams {
		_, b := drain(t, s, tb)
		if i == 0 {
			want = b
		} else if b != want {
			t.Fatalf("thread %d has %d barriers, thread 0 has %d", i, b, want)
		}
	}
	if want == 0 {
		t.Fatal("no barriers emitted")
	}
}

func TestWorkBalancedAcrossThreads(t *testing.T) {
	w := New(DefaultConfig())
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	streams := w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000))
	counts := make([]int, len(streams))
	for i, s := range streams {
		counts[i], _ = drain(t, s, tb)
	}
	min, max := counts[0], counts[0]
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	// Spark-SQL-like balance: the paper's linearity argument needs
	// near-equal per-thread work.
	if float64(max) > 1.15*float64(min) {
		t.Fatalf("imbalanced: min=%d max=%d", min, max)
	}
}

func TestDeterministicStreams(t *testing.T) {
	w := New(DefaultConfig())
	collect := func() []workload.Op {
		var ops []workload.Op
		var op workload.Op
		s := w.Threads(sim.NewRNG(42), sim.NewRNG(42+1000))[3]
		for s.Next(&op) {
			ops = append(ops, op)
		}
		return ops
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}

func TestFootprintMatchesSegments(t *testing.T) {
	cfg := DefaultConfig()
	w := New(cfg)
	want := cfg.LineitemPages + cfg.OrdersPages + cfg.CustomerPages + cfg.HashPages + cfg.InputPages
	if w.FootprintPages() != want {
		t.Fatalf("footprint = %d, want %d", w.FootprintPages(), want)
	}
}

func TestInputSegmentIsFileBacked(t *testing.T) {
	w := New(DefaultConfig())
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	if !tb.PTE(w.input.Base).File() {
		t.Fatal("input pages should be file-backed")
	}
	if tb.PTE(w.lineitem.Base).File() {
		t.Fatal("lineitem should be anonymous")
	}
}

func TestProbesLandInHashRegion(t *testing.T) {
	w := New(DefaultConfig())
	s := w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000))[0]
	var op workload.Op
	hashHits := 0
	for s.Next(&op) {
		if op.Kind == workload.OpAccess && w.hash.Contains(op.VPN) {
			hashHits++
		}
	}
	if hashHits == 0 {
		t.Fatal("no hash-region accesses")
	}
}

func TestProbesClusterAtHashRegionFront(t *testing.T) {
	w := New(DefaultConfig())
	s := w.Threads(sim.NewRNG(1), sim.NewRNG(2))[0]
	var op workload.Op
	front, back := 0, 0
	for s.Next(&op) {
		if op.Kind == workload.OpAccess && w.hash.Contains(op.VPN) && !op.Write {
			if int(op.VPN-w.hash.Base) < w.hash.Pages/4 {
				front++
			} else {
				back++
			}
		}
	}
	// Zipfian clustering: the front quarter must absorb well over its
	// proportional share of probes.
	if front < back {
		t.Fatalf("probes not clustered: front=%d back=%d", front, back)
	}
}

func TestTaskAssignmentVariesPerTrial(t *testing.T) {
	w := New(DefaultConfig())
	collect := func(trial uint64) []workload.Op {
		var ops []workload.Op
		var op workload.Op
		s := w.Threads(sim.NewRNG(1), sim.NewRNG(trial))[0]
		for i := 0; i < 200 && s.Next(&op); i++ {
			ops = append(ops, op)
		}
		return ops
	}
	a, b := collect(1), collect(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("trial seed does not change task assignment")
	}
}

func TestTotalWorkIdenticalAcrossTrials(t *testing.T) {
	// Dynamic scheduling moves work between threads but must not change
	// the total work done ("otherwise identical executions").
	w := New(DefaultConfig())
	total := func(trial uint64) int {
		n := 0
		var op workload.Op
		for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(trial)) {
			for s.Next(&op) {
				if op.Kind == workload.OpAccess {
					n++
				}
			}
		}
		return n
	}
	if a, b := total(1), total(2); a != b {
		t.Fatalf("total accesses differ across trials: %d vs %d", a, b)
	}
}
