// Package workload defines how benchmarks drive the simulated memory
// system: each workload lays out a virtual address space and produces one
// operation stream per thread. Streams are lazy generators, so multi-
// million-access executions cost no materialized trace memory.
//
// The three workload families the paper uses live in subpackages:
// tpch (data warehousing), pagerank (graph processing), and ycsb
// (key-value serving). They are modeled at the page-access level with the
// structural properties the paper's analysis leans on — staging and
// balance for TPC-H, degree-skewed stragglers for PageRank, zipfian
// request skew for YCSB.
package workload

import (
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/zram"
)

// OpKind discriminates operations in a thread's stream.
type OpKind uint8

const (
	// OpAccess touches one page (read or write) and performs CPU work.
	OpAccess OpKind = iota
	// OpCompute performs CPU work without touching memory.
	OpCompute
	// OpBarrier synchronizes all threads of the workload.
	OpBarrier
	// OpReqStart begins a timed request (YCSB latency capture).
	OpReqStart
	// OpReqEnd completes the current timed request.
	OpReqEnd
)

// ReqClass labels timed requests for separate tail accounting.
type ReqClass uint8

const (
	// ReqRead is a read-type request (GET).
	ReqRead ReqClass = iota
	// ReqWrite is a write-type request (UPDATE/INSERT).
	ReqWrite
)

// Op is one operation in a thread program.
type Op struct {
	Kind  OpKind
	VPN   pagetable.VPN // OpAccess
	Write bool          // OpAccess
	CPU   sim.Duration  // OpAccess and OpCompute: attached CPU work
	Class ReqClass      // OpReqStart
}

// Stream lazily yields a thread's operations. Next fills op and reports
// whether an operation was produced; false means the thread is done.
type Stream interface {
	Next(op *Op) bool
}

// Workload describes one benchmark.
type Workload interface {
	// Name identifies the workload ("tpch", "pagerank", "ycsb-a", ...).
	Name() string
	// TableRegions is how many PMD regions the address space spans
	// (including holes).
	TableRegions() int
	// RegionPTEs is the page-table region fanout the workload was laid
	// out with.
	RegionPTEs() int
	// Layout maps the workload's segments into t. Unmapped gaps remain
	// holes that naive linear scans waste time skipping.
	Layout(t *pagetable.Table)
	// FootprintPages is the number of mapped pages (the paper's
	// "memory footprint" that capacity ratios are computed against).
	FootprintPages() int
	// Threads builds one op stream per thread for a single execution.
	// plan is the workload RNG, fixed per configuration, so every trial
	// executes the identical work (queries, graphs, key popularity).
	// trial varies per execution and drives only runtime scheduling
	// decisions — dynamic task-to-thread assignment (Spark task
	// scheduling, OpenMP dynamic chunks, connection dispatch) — which is
	// exactly the nondeterminism that survives the paper's
	// reboot-per-run methodology.
	Threads(plan, trial *sim.RNG) []Stream
	// ContentClass reports the compressibility class of a page, for the
	// ZRAM device.
	ContentClass(vpn int64) zram.ContentClass
}

// Segmented is an optional Workload extension exposing the address-space
// layout, letting analysis tools attribute faults to segments.
type Segmented interface {
	Segments() []Segment
}

// FuncStream adapts a closure to Stream.
type FuncStream func(op *Op) bool

// Next implements Stream.
func (f FuncStream) Next(op *Op) bool { return f(op) }

// SliceStream yields a fixed op slice; used in tests.
type SliceStream struct {
	Ops []Op
	i   int
}

// Next implements Stream.
func (s *SliceStream) Next(op *Op) bool {
	if s.i >= len(s.Ops) {
		return false
	}
	*op = s.Ops[s.i]
	s.i++
	return true
}
