package workload

import (
	"math"
	"testing"

	"mglrusim/internal/sim"
	"mglrusim/internal/zram"
)

func TestZipfianBounds(t *testing.T) {
	z := NewZipfian(1000, YCSBTheta)
	rng := sim.NewRNG(1)
	for i := 0; i < 10000; i++ {
		k := z.Next(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(10000, YCSBTheta)
	rng := sim.NewRNG(2)
	counts := make([]int, 10000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Next(rng)]++
	}
	// Head mass: top 1% of keys should capture a large share.
	head := 0
	for k := 0; k < 100; k++ {
		head += counts[k]
	}
	frac := float64(head) / draws
	if frac < 0.3 {
		t.Fatalf("top-1%% key mass = %.2f, want heavily skewed", frac)
	}
	// Key 0 must be the most popular for plain zipfian.
	for k := 1; k < 100; k++ {
		if counts[k] > counts[0]*2 {
			t.Fatalf("key %d more popular than key 0", k)
		}
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	z := NewScrambledZipfian(10000, YCSBTheta)
	rng := sim.NewRNG(3)
	counts := make([]int, 10000)
	for i := 0; i < 100000; i++ {
		counts[z.Next(rng)]++
	}
	// The hottest key should NOT be key 0 in general; hot keys scatter.
	hot := 0
	for k, c := range counts {
		if c > counts[hot] {
			hot = k
		}
	}
	if hot < 100 {
		t.Logf("hottest key is %d (may occasionally be small)", hot)
	}
	// Still heavily skewed: max count far above mean.
	mean := 100000.0 / 10000.0
	if float64(counts[hot]) < 20*mean {
		t.Fatalf("scrambled zipfian lost skew: max=%d mean=%.1f", counts[hot], mean)
	}
}

func TestZipfianDeterministic(t *testing.T) {
	z1 := NewScrambledZipfian(5000, YCSBTheta)
	z2 := NewScrambledZipfian(5000, YCSBTheta)
	r1, r2 := sim.NewRNG(9), sim.NewRNG(9)
	for i := 0; i < 100; i++ {
		if z1.Next(r1) != z2.Next(r2) {
			t.Fatal("zipfian not deterministic")
		}
	}
}

func TestZetaLargeNFinite(t *testing.T) {
	z := NewZipfian(50_000_000, YCSBTheta)
	if math.IsNaN(z.zetan) || math.IsInf(z.zetan, 0) || z.zetan <= 0 {
		t.Fatalf("zetan = %v", z.zetan)
	}
	rng := sim.NewRNG(4)
	for i := 0; i < 1000; i++ {
		k := z.Next(rng)
		if k < 0 || k >= 50_000_000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestUniform(t *testing.T) {
	u := NewUniform(100)
	rng := sim.NewRNG(5)
	seen := map[int64]bool{}
	for i := 0; i < 2000; i++ {
		k := u.Next(rng)
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	if len(seen) < 95 {
		t.Fatalf("uniform coverage only %d/100", len(seen))
	}
}

func TestAddrSpaceAlignmentAndHoles(t *testing.T) {
	as := NewAddrSpace(64)
	a := as.Add("a", 100, false, zram.ClassStructured)
	b := as.Add("b", 50, true, zram.ClassRandom)
	if a.Base%64 != 0 || b.Base%64 != 0 {
		t.Fatal("segments not region aligned")
	}
	if b.Base < a.End()+64 {
		t.Fatalf("no hole between segments: a ends %d, b starts %d", a.End(), b.Base)
	}
	if as.FootprintPages() != 150 {
		t.Fatalf("footprint = %d", as.FootprintPages())
	}
	if as.Regions()*64 < int(b.End()) {
		t.Fatal("regions do not cover the span")
	}
}

func TestAddrSpaceClassOf(t *testing.T) {
	as := NewAddrSpace(64)
	a := as.Add("a", 10, false, zram.ClassZeroHeavy)
	b := as.Add("b", 10, false, zram.ClassRandom)
	if as.ClassOf(int64(a.Base)) != zram.ClassZeroHeavy {
		t.Fatal("class of a wrong")
	}
	if as.ClassOf(int64(b.Base)) != zram.ClassRandom {
		t.Fatal("class of b wrong")
	}
}

func TestSegmentPageBounds(t *testing.T) {
	s := Segment{Base: 100, Pages: 5}
	if s.Page(0) != 100 || s.Page(4) != 104 {
		t.Fatal("Page addressing wrong")
	}
	if !s.Contains(104) || s.Contains(105) {
		t.Fatal("Contains wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range page")
		}
	}()
	s.Page(5)
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Ops: []Op{{Kind: OpBarrier}, {Kind: OpAccess, VPN: 3}}}
	var op Op
	if !s.Next(&op) || op.Kind != OpBarrier {
		t.Fatal("first op wrong")
	}
	if !s.Next(&op) || op.VPN != 3 {
		t.Fatal("second op wrong")
	}
	if s.Next(&op) {
		t.Fatal("stream should be exhausted")
	}
}
