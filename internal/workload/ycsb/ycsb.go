// Package ycsb models the YCSB A, B, and C workloads against a
// memcached-like key-value cache (package kvstore), the paper's serving
// workload. Requests draw keys from YCSB's scrambled-zipfian distribution
// (theta = 0.99) and are delimited with request markers so the harness
// records per-request latency for the tail-latency figures (Figs. 3, 8,
// 12).
//
// Mixes match YCSB: A = 50% reads / 50% updates, B = 95/5, C = 100/0.
// An execution first loads the cache (unmeasured), then issues the
// measured request stream from a fixed number of server threads (the
// paper runs memcached with its default four).
package ycsb

import (
	"fmt"

	"mglrusim/internal/kvstore"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
	"mglrusim/internal/zram"
)

// Mix identifies the YCSB workload letter.
type Mix uint8

// The workload mixes the paper evaluates.
const (
	MixA Mix = iota // 50% read, 50% update
	MixB            // 95% read, 5% update
	MixC            // 100% read
)

// ReadFraction reports the mix's read ratio.
func (m Mix) ReadFraction() float64 {
	switch m {
	case MixA:
		return 0.5
	case MixB:
		return 0.95
	default:
		return 1.0
	}
}

// String implements fmt.Stringer.
func (m Mix) String() string {
	switch m {
	case MixA:
		return "ycsb-a"
	case MixB:
		return "ycsb-b"
	case MixC:
		return "ycsb-c"
	}
	return fmt.Sprintf("Mix(%d)", uint8(m))
}

// Config sizes the workload.
type Config struct {
	// Mix selects A, B, or C.
	Mix Mix
	// Items is the number of cached items (the paper loads 11M; scaled).
	Items int
	// Requests is the measured request count (the paper issues 110M;
	// scaled, keeping the 10:1 requests:items ratio).
	Requests int
	// Threads is the server thread count (memcached default: 4).
	Threads int
	// Theta is the zipfian skew (YCSB default 0.99).
	Theta float64
	// LookupCPU and UpdateCPU are per-request compute costs.
	LookupCPU, UpdateCPU sim.Duration
	// RegionPTEs is the page-table region fanout.
	RegionPTEs int
}

// DefaultConfig returns the calibrated scaled-down configuration for mix.
func DefaultConfig(mix Mix) Config {
	return Config{
		Mix:        mix,
		Items:      14000,
		Requests:   140000,
		Threads:    4,
		Theta:      workload.YCSBTheta,
		LookupCPU:  60 * sim.Microsecond,
		UpdateCPU:  90 * sim.Microsecond,
		RegionPTEs: workload.DefaultRegionPTEs,
	}
}

// YCSB is the workload.
type YCSB struct {
	cfg   Config
	as    *workload.AddrSpace
	store *kvstore.Store
}

// New builds the workload.
func New(cfg Config) *YCSB {
	if cfg.Items <= 0 || cfg.Requests <= 0 || cfg.Threads <= 0 {
		panic("ycsb: invalid config")
	}
	w := &YCSB{cfg: cfg, as: workload.NewAddrSpace(cfg.RegionPTEs)}
	sc := kvstore.DefaultConfig(cfg.Items)
	probe := kvstore.New(sc, 0)
	// One contiguous segment for index + slabs, as a real memcached heap
	// is laid out; ContentClass distinguishes the incompressible values.
	seg := w.as.Add("kvstore", probe.Pages(), false, zram.ClassStructured)
	w.store = kvstore.New(sc, seg.Base)
	return w
}

// Name implements workload.Workload.
func (w *YCSB) Name() string { return w.cfg.Mix.String() }

// TableRegions implements workload.Workload.
func (w *YCSB) TableRegions() int { return w.as.Regions() }

// RegionPTEs reports the region fanout for the system builder.
func (w *YCSB) RegionPTEs() int { return w.as.RegionPTEs() }

// Layout implements workload.Workload.
func (w *YCSB) Layout(t *pagetable.Table) { w.as.Map(t) }

// FootprintPages implements workload.Workload.
func (w *YCSB) FootprintPages() int { return w.as.FootprintPages() }

// ContentClass implements workload.Workload: the hash index is pointer
// data (structured), item slabs hold serialized values (incompressible).
func (w *YCSB) ContentClass(vpn int64) zram.ContentClass {
	if pagetable.VPN(vpn) >= w.store.End()-pagetable.VPN(w.store.SlabPages()) &&
		pagetable.VPN(vpn) < w.store.End() {
		return zram.ClassRandom
	}
	return w.as.ClassOf(vpn)
}

// Store exposes the kv layout for tests.
func (w *YCSB) Store() *kvstore.Store { return w.store }

// Threads implements workload.Workload: thread 0..n-1 each handle an
// equal share of the load phase and of the measured requests. The key
// popularity profile (scrambled zipfian) is fixed by the workload; the
// request arrival sequence is drawn per execution, as a real load
// generator's connections would deliver it.
func (w *YCSB) Threads(plan, trial *sim.RNG) []workload.Stream {
	n := w.cfg.Threads
	streams := make([]workload.Stream, n)
	for tid := 0; tid < n; tid++ {
		lf := w.cfg.Items * tid / n
		lt := w.cfg.Items * (tid + 1) / n
		reqs := w.cfg.Requests*(tid+1)/n - w.cfg.Requests*tid/n
		streams[tid] = &stream{
			w:       w,
			zipf:    workload.NewScrambledZipfian(int64(w.cfg.Items), w.cfg.Theta),
			rng:     trial.Stream(uint64(tid) + 577),
			loadKey: lf,
			loadEnd: lt,
			reqs:    reqs,
		}
	}
	return streams
}

// stream issues the load phase then the measured request phase.
type stream struct {
	w    *YCSB
	zipf *workload.Zipfian
	rng  *sim.RNG

	loadKey, loadEnd int
	loadStep         int // 0: index touch, 1: item write

	reqs    int
	pending [2]kvstore.PageAccess
	step    int // 0: emit ReqStart, 1..2: accesses, 3: emit ReqEnd
	isRead  bool
}

// Next implements workload.Stream.
func (s *stream) Next(op *workload.Op) bool {
	w := s.w
	// Load phase: insert every owned item (unmeasured writes).
	if s.loadKey < s.loadEnd {
		acc := w.store.Set(int64(s.loadKey))
		a := acc[s.loadStep]
		*op = workload.Op{Kind: workload.OpAccess, VPN: a.VPN, Write: a.Write, CPU: w.cfg.UpdateCPU / 2}
		s.loadStep++
		if s.loadStep == len(acc) {
			s.loadStep = 0
			s.loadKey++
		}
		return true
	}
	// Request phase.
	if s.reqs <= 0 && s.step == 0 {
		return false
	}
	switch s.step {
	case 0:
		s.isRead = s.rng.Float64() < w.cfg.Mix.ReadFraction()
		key := s.zipf.Next(s.rng)
		if s.isRead {
			s.pending = w.store.Get(key)
		} else {
			s.pending = w.store.Set(key)
		}
		class := workload.ReqRead
		if !s.isRead {
			class = workload.ReqWrite
		}
		*op = workload.Op{Kind: workload.OpReqStart, Class: class}
		s.step = 1
	case 1, 2:
		a := s.pending[s.step-1]
		cpu := w.cfg.LookupCPU / 2
		if a.Write {
			cpu = w.cfg.UpdateCPU / 2
		}
		*op = workload.Op{Kind: workload.OpAccess, VPN: a.VPN, Write: a.Write, CPU: cpu}
		s.step++
	case 3:
		*op = workload.Op{Kind: workload.OpReqEnd}
		s.step = 0
		s.reqs--
	}
	return true
}

var _ workload.Workload = (*YCSB)(nil)

// Segments implements workload.Segmented.
func (w *YCSB) Segments() []workload.Segment { return w.as.Segments() }
