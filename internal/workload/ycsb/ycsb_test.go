package ycsb

import (
	"testing"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/workload"
	"mglrusim/internal/zram"
)

func small(mix Mix) Config {
	cfg := DefaultConfig(mix)
	cfg.Items = 2000
	cfg.Requests = 10000
	return cfg
}

type tally struct {
	accesses, writes   int
	reqReads, reqWrite int
	inReq              bool
}

func drain(t *testing.T, s workload.Stream, tb *pagetable.Table) tally {
	t.Helper()
	var op workload.Op
	var tl tally
	for s.Next(&op) {
		switch op.Kind {
		case workload.OpAccess:
			tl.accesses++
			if op.Write {
				tl.writes++
			}
			if !tb.PTE(op.VPN).Mapped() {
				t.Fatalf("access to unmapped vpn %d", op.VPN)
			}
		case workload.OpReqStart:
			if tl.inReq {
				t.Fatal("nested request")
			}
			tl.inReq = true
			if op.Class == workload.ReqRead {
				tl.reqReads++
			} else {
				tl.reqWrite++
			}
		case workload.OpReqEnd:
			if !tl.inReq {
				t.Fatal("ReqEnd without ReqStart")
			}
			tl.inReq = false
		}
	}
	if tl.inReq {
		t.Fatal("stream ended mid-request")
	}
	return tl
}

func table(w *YCSB) *pagetable.Table {
	tb := pagetable.NewWithRegionSize(w.TableRegions(), w.RegionPTEs())
	w.Layout(tb)
	return tb
}

func TestRequestCountsMatchConfig(t *testing.T) {
	cfg := small(MixA)
	w := New(cfg)
	tb := table(w)
	total := 0
	for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000)) {
		tl := drain(t, s, tb)
		total += tl.reqReads + tl.reqWrite
	}
	if total != cfg.Requests {
		t.Fatalf("requests = %d, want %d", total, cfg.Requests)
	}
}

func TestMixRatios(t *testing.T) {
	cases := []struct {
		mix Mix
		lo  float64
		hi  float64
	}{
		{MixA, 0.45, 0.55},
		{MixB, 0.92, 0.98},
		{MixC, 1.0, 1.0},
	}
	for _, c := range cases {
		w := New(small(c.mix))
		tb := table(w)
		reads, total := 0, 0
		for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000)) {
			tl := drain(t, s, tb)
			reads += tl.reqReads
			total += tl.reqReads + tl.reqWrite
		}
		frac := float64(reads) / float64(total)
		if frac < c.lo || frac > c.hi {
			t.Errorf("%v read fraction = %.3f, want [%.2f, %.2f]", c.mix, frac, c.lo, c.hi)
		}
	}
}

func TestMixCNeverWritesAfterLoad(t *testing.T) {
	cfg := small(MixC)
	w := New(cfg)
	tb := table(w)
	for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000)) {
		tl := drain(t, s, tb)
		// Load-phase writes are exactly one per owned item.
		if tl.reqWrite != 0 {
			t.Fatal("mix C issued write requests")
		}
	}
}

func TestLoadPhaseTouchesAllItems(t *testing.T) {
	cfg := small(MixA)
	cfg.Requests = 4 // negligible request phase
	w := New(cfg)
	tb := table(w)
	writes := 0
	for _, s := range w.Threads(sim.NewRNG(1), sim.NewRNG(1+1000)) {
		tl := drain(t, s, tb)
		writes += tl.writes
	}
	if writes < cfg.Items {
		t.Fatalf("load wrote %d items, want >= %d", writes, cfg.Items)
	}
}

func TestNames(t *testing.T) {
	if New(small(MixA)).Name() != "ycsb-a" ||
		New(small(MixB)).Name() != "ycsb-b" ||
		New(small(MixC)).Name() != "ycsb-c" {
		t.Fatal("names wrong")
	}
}

func TestContentClassSplitsIndexAndSlabs(t *testing.T) {
	w := New(small(MixA))
	st := w.Store()
	slabStart := int64(st.End()) - int64(st.SlabPages())
	if w.ContentClass(slabStart) != zram.ClassRandom {
		t.Fatal("slab pages should be incompressible")
	}
	if w.ContentClass(slabStart-1) == zram.ClassRandom {
		t.Fatal("index pages should be compressible")
	}
}

func TestDeterministicStreams(t *testing.T) {
	w := New(small(MixB))
	collect := func() []workload.Op {
		var ops []workload.Op
		var op workload.Op
		s := w.Threads(sim.NewRNG(7), sim.NewRNG(7+1000))[1]
		for s.Next(&op) {
			ops = append(ops, op)
		}
		return ops
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs", i)
		}
	}
}
