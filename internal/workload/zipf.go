package workload

import (
	"math"

	"mglrusim/internal/sim"
)

// Zipfian generates keys in [0, n) with the YCSB zipfian distribution
// (Gray et al.'s algorithm, as used by the YCSB ScrambledZipfianGenerator).
// Lower keys are exponentially more popular; Scrambled spreads the hot
// keys across the keyspace with a hash.
type Zipfian struct {
	n         int64
	theta     float64
	alpha     float64
	zetan     float64
	eta       float64
	scrambled bool
}

// YCSBTheta is the skew constant YCSB uses.
const YCSBTheta = 0.99

// NewZipfian builds a zipfian generator over [0, n) with skew theta.
func NewZipfian(n int64, theta float64) *Zipfian {
	if n <= 0 {
		panic("workload: zipfian needs positive n")
	}
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	zeta2 := zeta(2, theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// NewScrambledZipfian builds the scrambled variant: same popularity
// profile, hot items scattered uniformly over the keyspace — YCSB's
// default request distribution.
func NewScrambledZipfian(n int64, theta float64) *Zipfian {
	z := NewZipfian(n, theta)
	z.scrambled = true
	return z
}

func zeta(n int64, theta float64) float64 {
	// Exact for small n; sampled tail extrapolation keeps construction
	// O(10^5) even for large keyspaces, with error well under sampling
	// noise for simulator purposes.
	const exact = 100000
	if n <= exact {
		sum := 0.0
		for i := int64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	sum := 0.0
	for i := int64(1); i <= exact; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	// Integral approximation of the tail.
	sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(exact), 1-theta)) / (1 - theta)
	return sum
}

// Next draws a key.
func (z *Zipfian) Next(rng *sim.RNG) int64 {
	u := rng.Float64()
	uz := u * z.zetan
	var k int64
	switch {
	case uz < 1.0:
		k = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		k = 1
	default:
		k = int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if k >= z.n {
		k = z.n - 1
	}
	if z.scrambled {
		k = int64(fnvHash64(uint64(k)) % uint64(z.n))
	}
	return k
}

// fnvHash64 is the FNV-1a style hash YCSB uses for scrambling.
func fnvHash64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		octet := v & 0xff
		v >>= 8
		h ^= octet
		h *= prime
	}
	return h
}

// Uniform draws uniformly from [0, n).
type Uniform struct{ n int64 }

// NewUniform builds a uniform key generator over [0, n).
func NewUniform(n int64) *Uniform {
	if n <= 0 {
		panic("workload: uniform needs positive n")
	}
	return &Uniform{n: n}
}

// Next draws a key.
func (u *Uniform) Next(rng *sim.RNG) int64 { return rng.Int63n(u.n) }
