package workload

import (
	"testing"

	"mglrusim/internal/sim"
)

// FuzzZipfian drives the zipfian generator with arbitrary keyspace
// sizes, skews, and RNG seeds, asserting its contract: every sample in
// [0, n), determinism for a fixed seed, and — for meaningful skews —
// head-heavier-than-uniform mass.
func FuzzZipfian(f *testing.F) {
	f.Add(int64(100), 0.99, uint64(1), false)
	f.Add(int64(100), 0.99, uint64(1), true)
	f.Add(int64(1), 0.5, uint64(42), false)
	f.Add(int64(1<<20), YCSBTheta, uint64(7), true)
	f.Add(int64(7), 0.2, uint64(0), false)
	f.Add(int64(200001), 0.8, uint64(99), true) // tail-extrapolated zeta

	f.Fuzz(func(t *testing.T, n int64, theta float64, seed uint64, scrambled bool) {
		// Clamp to the constructor's domain rather than skipping: the
		// interesting inputs are the extremes just inside it.
		if n <= 0 || n > 1<<22 {
			t.Skip()
		}
		if theta != theta || theta <= 0 || theta >= 1 {
			t.Skip() // theta==1 divides by zero in the closed form, by design
		}
		var z *Zipfian
		if scrambled {
			z = NewScrambledZipfian(n, theta)
		} else {
			z = NewZipfian(n, theta)
		}

		const samples = 512
		rng := sim.NewRNG(seed)
		first := make([]int64, samples)
		hits := make(map[int64]int)
		for i := 0; i < samples; i++ {
			k := z.Next(rng)
			if k < 0 || k >= n {
				t.Fatalf("sample %d out of range [0,%d): %d (theta=%v scrambled=%v)", i, n, k, theta, scrambled)
			}
			first[i] = k
			hits[k]++
		}

		// Same seed replays identically.
		rng = sim.NewRNG(seed)
		for i := 0; i < samples; i++ {
			if k := z.Next(rng); k != first[i] {
				t.Fatalf("sample %d not deterministic: %d then %d", i, first[i], k)
			}
		}

		// Distribution sanity for the unscrambled variant at real skew
		// over a keyspace big enough for the head/tail contrast: the most
		// popular key is key 0, and the hottest decile carries more than
		// its uniform share.
		if !scrambled && theta >= 0.6 && n >= 1000 {
			headMass := 0
			for k, c := range hits {
				if k < n/10 {
					headMass += c
				}
			}
			if headMass <= samples/10 {
				t.Fatalf("zipf(theta=%v, n=%d): hottest decile drew %d of %d samples — no skew", theta, n, headMass, samples)
			}
		}
	})
}
