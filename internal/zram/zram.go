// Package zram provides the compression machinery behind the simulator's
// ZRAM swap device: an LZO-RLE-style byte compressor (run-length encoding
// of repeated bytes with literal passthrough, the fast path that the
// kernel's lzo-rle favours on zero-heavy anonymous pages), a deterministic
// synthetic page-content generator, and a compressed-pool accounting store.
//
// The compressor is functional — it round-trips real bytes — so the
// compressed-size accounting that drives ZRAM capacity behaviour is
// measured, not assumed.
package zram

import (
	"encoding/binary"
	"errors"
)

// Compress encodes src with a byte-oriented RLE scheme:
//
//	token 0x00, count-1, value      -> run of count (4..259) repeated bytes
//	token 0x01, count-1, bytes...   -> literal run of count (1..256) bytes
//
// Runs shorter than 4 are folded into literals. The output is never more
// than src length + 2*(len/256+1) bytes.
func Compress(src []byte) []byte { return AppendCompress(nil, src) }

// AppendCompress appends the compressed encoding of src to dst and returns
// the extended slice, letting hot callers reuse one scratch buffer instead
// of allocating per page write.
func AppendCompress(dst, src []byte) []byte {
	out := dst
	if out == nil {
		out = make([]byte, 0, len(src)/4+16)
	}
	i := 0
	litStart := -1
	flushLits := func(end int) {
		for litStart >= 0 && litStart < end {
			n := end - litStart
			if n > 256 {
				n = 256
			}
			out = append(out, 0x01, byte(n-1))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
		litStart = -1
	}
	for i < len(src) {
		// Measure run length at i.
		j := i + 1
		for j < len(src) && src[j] == src[i] && j-i < 259 {
			j++
		}
		if j-i >= 4 {
			flushLits(i)
			out = append(out, 0x00, byte(j-i-4), src[i])
			i = j
			continue
		}
		if litStart < 0 {
			litStart = i
		}
		i = j
	}
	flushLits(len(src))
	return out
}

// ErrCorrupt reports malformed compressed data.
var ErrCorrupt = errors.New("zram: corrupt compressed stream")

// Decompress decodes data produced by Compress into dst, which must be
// exactly the original length. It returns ErrCorrupt on malformed input.
func Decompress(data []byte, dst []byte) error {
	di := 0
	i := 0
	for i < len(data) {
		if i+1 >= len(data) {
			return ErrCorrupt
		}
		switch data[i] {
		case 0x00:
			if i+2 >= len(data) {
				return ErrCorrupt
			}
			n := int(data[i+1]) + 4
			v := data[i+2]
			if di+n > len(dst) {
				return ErrCorrupt
			}
			for k := 0; k < n; k++ {
				dst[di+k] = v
			}
			di += n
			i += 3
		case 0x01:
			n := int(data[i+1]) + 1
			if i+2+n > len(data) || di+n > len(dst) {
				return ErrCorrupt
			}
			copy(dst[di:di+n], data[i+2:i+2+n])
			di += n
			i += 2 + n
		default:
			return ErrCorrupt
		}
	}
	if di != len(dst) {
		return ErrCorrupt
	}
	return nil
}

// ContentClass describes how compressible a page's synthetic contents are.
type ContentClass uint8

const (
	// ClassZeroHeavy models freshly-touched anonymous memory: mostly
	// zero bytes with sparse data (compresses very well).
	ClassZeroHeavy ContentClass = iota
	// ClassStructured models columnar/graph data: repetitive small
	// records (compresses moderately).
	ClassStructured
	// ClassRandom models hashed or encrypted data (incompressible).
	ClassRandom
)

// FillPage deterministically generates a page's contents into buf from its
// identity (vpn), a dirty-version counter, and its content class. The same
// (vpn, version, class) always yields the same bytes, so swap-out and
// swap-in see consistent data without the simulator retaining page bodies.
func FillPage(buf []byte, vpn int64, version uint32, class ContentClass) {
	seed := uint64(vpn)*0x9e3779b97f4a7c15 ^ uint64(version)<<32 ^ uint64(class)
	switch class {
	case ClassZeroHeavy:
		for i := range buf {
			buf[i] = 0
		}
		// Sprinkle a few words of data so pages differ.
		x := seed
		for k := 0; k < len(buf)/64; k++ {
			x = x*6364136223846793005 + 1442695040888963407
			off := int(x % uint64(len(buf)-8))
			binary.LittleEndian.PutUint64(buf[off:], x)
		}
	case ClassStructured:
		// 16-byte records: 8-byte key varying slowly, 8 bytes of small
		// integers — long runs of shared high bytes.
		x := seed
		for off := 0; off+16 <= len(buf); off += 16 {
			binary.LittleEndian.PutUint64(buf[off:], seed>>16) // shared prefix
			x = x*6364136223846793005 + 1442695040888963407
			binary.LittleEndian.PutUint64(buf[off+8:], x%256)
		}
	default: // ClassRandom
		x := seed | 1
		for off := 0; off+8 <= len(buf); off += 8 {
			x = x*6364136223846793005 + 1442695040888963407
			binary.LittleEndian.PutUint64(buf[off:], x)
		}
	}
}

// Store is the compressed-pool accounting for a ZRAM device: per-slot
// compressed sizes and aggregate ratios. Page bodies are not retained —
// FillPage regenerates them — but sizes come from running the real
// compressor on the real bytes.
type Store struct {
	pageSize int
	// sizes is dense, indexed by slot: swap areas hand out slots from a
	// contiguous range starting at 0, and the fault path hits Write/Free
	// hard enough that map hashing showed up in profiles. 0 = unused (a
	// compressed page is never empty).
	sizes   []int32
	total   int64 // compressed bytes currently stored
	written int64 // uncompressed bytes ever written
	stored  int64 // compressed bytes ever written
	buf     []byte
	cbuf    []byte // reusable compression output scratch
}

// NewStore creates a Store for pages of pageSize bytes.
func NewStore(pageSize int) *Store {
	return &Store{pageSize: pageSize, buf: make([]byte, pageSize)}
}

// grow ensures the size table covers slot.
func (s *Store) grow(slot int32) {
	if int(slot) < len(s.sizes) {
		return
	}
	n := len(s.sizes)*2 + 64
	if n <= int(slot) {
		n = int(slot) + 1
	}
	sizes := make([]int32, n)
	copy(sizes, s.sizes)
	s.sizes = sizes
}

// Write compresses the synthetic contents of (vpn, version, class) into
// slot and returns the compressed size in bytes.
func (s *Store) Write(slot int32, vpn int64, version uint32, class ContentClass) int {
	FillPage(s.buf, vpn, version, class)
	s.cbuf = AppendCompress(s.cbuf[:0], s.buf)
	n := int32(len(s.cbuf))
	s.grow(slot)
	s.total += int64(n - s.sizes[slot])
	s.sizes[slot] = n
	s.written += int64(s.pageSize)
	s.stored += int64(n)
	return int(n)
}

// Free releases slot's storage.
func (s *Store) Free(slot int32) {
	if int(slot) < len(s.sizes) {
		s.total -= int64(s.sizes[slot])
		s.sizes[slot] = 0
	}
}

// SlotSize reports the compressed size of slot, or 0 if unused.
func (s *Store) SlotSize(slot int32) int {
	if int(slot) >= len(s.sizes) {
		return 0
	}
	return int(s.sizes[slot])
}

// CompressedBytes reports the bytes currently held by the pool.
func (s *Store) CompressedBytes() int64 { return s.total }

// Ratio reports the lifetime compression ratio (uncompressed/compressed),
// or 0 before any write.
func (s *Store) Ratio() float64 {
	if s.stored == 0 {
		return 0
	}
	return float64(s.written) / float64(s.stored)
}
