package zram

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCompressRoundTripSimple(t *testing.T) {
	cases := [][]byte{
		{},
		{1},
		{1, 2, 3},
		bytes.Repeat([]byte{0}, 4096),
		bytes.Repeat([]byte{7}, 300),
		append(bytes.Repeat([]byte{0}, 100), []byte{1, 2, 3, 4, 5}...),
		{1, 1, 1, 1, 2, 2, 2, 2, 2, 3},
	}
	for i, src := range cases {
		c := Compress(src)
		dst := make([]byte, len(src))
		if err := Decompress(c, dst); err != nil {
			t.Fatalf("case %d: decompress error: %v", i, err)
		}
		if !bytes.Equal(src, dst) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

// Property: compress/decompress round-trips arbitrary data.
func TestCompressRoundTripProperty(t *testing.T) {
	f := func(src []byte) bool {
		c := Compress(src)
		dst := make([]byte, len(src))
		if err := Decompress(c, dst); err != nil {
			return false
		}
		return bytes.Equal(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroPageCompressesHard(t *testing.T) {
	src := make([]byte, 4096)
	c := Compress(src)
	if len(c) > 64 {
		t.Fatalf("zero page compressed to %d bytes, want tiny", len(c))
	}
}

func TestRandomDataDoesNotExplode(t *testing.T) {
	src := make([]byte, 4096)
	FillPage(src, 1, 0, ClassRandom)
	c := Compress(src)
	if len(c) > len(src)+len(src)/128+16 {
		t.Fatalf("incompressible expansion too large: %d", len(c))
	}
}

func TestDecompressCorruptInput(t *testing.T) {
	dst := make([]byte, 16)
	for _, bad := range [][]byte{
		{0x00},             // truncated run token
		{0x02, 0x00},       // unknown token
		{0x00, 0xff, 0x01}, // run longer than dst
		{0x01, 0x10, 0x01}, // literal longer than stream
	} {
		if err := Decompress(bad, dst); err == nil {
			t.Fatalf("input %v should be rejected", bad)
		}
	}
}

func TestFillPageDeterministic(t *testing.T) {
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	for _, class := range []ContentClass{ClassZeroHeavy, ClassStructured, ClassRandom} {
		FillPage(a, 42, 3, class)
		FillPage(b, 42, 3, class)
		if !bytes.Equal(a, b) {
			t.Fatalf("class %d not deterministic", class)
		}
		FillPage(b, 42, 4, class)
		if bytes.Equal(a, b) {
			t.Fatalf("class %d ignores version", class)
		}
	}
}

func TestContentClassCompressionOrdering(t *testing.T) {
	buf := make([]byte, 4096)
	sizes := make([]int, 3)
	for i, class := range []ContentClass{ClassZeroHeavy, ClassStructured, ClassRandom} {
		FillPage(buf, 7, 1, class)
		sizes[i] = len(Compress(buf))
	}
	if !(sizes[0] < sizes[1] && sizes[1] < sizes[2]) {
		t.Fatalf("compression ordering violated: %v", sizes)
	}
}

func TestStoreAccounting(t *testing.T) {
	s := NewStore(4096)
	n1 := s.Write(1, 100, 0, ClassZeroHeavy)
	if n1 <= 0 || s.CompressedBytes() != int64(n1) {
		t.Fatalf("first write: n=%d total=%d", n1, s.CompressedBytes())
	}
	n2 := s.Write(2, 200, 0, ClassRandom)
	if s.CompressedBytes() != int64(n1+n2) {
		t.Fatal("total after second write wrong")
	}
	// Overwrite slot 1: total should replace, not add.
	n1b := s.Write(1, 100, 1, ClassRandom)
	if s.CompressedBytes() != int64(n1b+n2) {
		t.Fatalf("overwrite accounting wrong: %d != %d", s.CompressedBytes(), n1b+n2)
	}
	s.Free(2)
	if s.CompressedBytes() != int64(n1b) {
		t.Fatal("free accounting wrong")
	}
	if s.SlotSize(2) != 0 {
		t.Fatal("freed slot still reports size")
	}
	if s.Ratio() <= 0 {
		t.Fatal("ratio should be positive after writes")
	}
}

func TestStoreRatioReflectsCompressibility(t *testing.T) {
	zs := NewStore(4096)
	for i := int32(0); i < 50; i++ {
		zs.Write(i, int64(i), 0, ClassZeroHeavy)
	}
	rs := NewStore(4096)
	for i := int32(0); i < 50; i++ {
		rs.Write(i, int64(i), 0, ClassRandom)
	}
	if zs.Ratio() < 5 {
		t.Fatalf("zero-heavy ratio = %.2f, want >5", zs.Ratio())
	}
	if rs.Ratio() > 1.5 {
		t.Fatalf("random ratio = %.2f, want ~1", rs.Ratio())
	}
}
