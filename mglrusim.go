// Package mglrusim is a simulation framework for characterizing operating
// system page replacement policies, reproducing "Characterizing Emerging
// Page Replacement Policies for Memory-Intensive Applications" (Wu,
// Isaacman, Bhattacharjee; IISWC 2024).
//
// The package simulates a complete memory-management stack — page tables
// with hardware-set accessed bits, a reverse map, physical frames with
// watermark-driven reclaim, SSD and compressed-RAM (ZRAM) swap devices
// with readahead, and background kswapd/aging daemons — on a deterministic
// discrete-event engine. Two replacement policies are provided: the
// classic Clock-LRU (active/inactive lists) and the Multi-Generational
// LRU in all the variants the paper studies (default, Gen-14, Scan-All,
// Scan-None, Scan-Rand). Three workload families drive the system: TPC-H
// style data warehousing, GAP-style PageRank, and YCSB A/B/C over a
// memcached-like KV cache.
//
// # Quick start
//
//	w := mglrusim.NewTPCH(mglrusim.TPCHDefaults())
//	sys := mglrusim.DefaultSystemConfig() // 12 CPUs, 50% ratio, SSD swap
//	m, err := mglrusim.RunTrial(w, mglrusim.NewMGLRU, sys, 42, 1)
//	if err != nil { ... }
//	fmt.Println(m.RuntimeSeconds(), m.Counters.TotalFaults())
//
// For multi-trial series and the paper's figures, use Experiments:
//
//	r := mglrusim.NewRunner(mglrusim.DefaultExperimentOptions())
//	res, err := mglrusim.Figures["fig1"](r)
//	fmt.Println(res.Render())
//
// Custom replacement policies implement the Policy interface and can be
// benchmarked against the built-ins with the same harness; see
// examples/custompolicy.
package mglrusim

import (
	"mglrusim/internal/checkpoint"
	"mglrusim/internal/core"
	"mglrusim/internal/experiments"
	"mglrusim/internal/fault"
	"mglrusim/internal/mem"
	"mglrusim/internal/pagecache"
	"mglrusim/internal/pagetable"
	"mglrusim/internal/policy"
	"mglrusim/internal/policy/clock"
	"mglrusim/internal/policy/mglru"
	"mglrusim/internal/rmap"
	"mglrusim/internal/sim"
	"mglrusim/internal/stats"
	"mglrusim/internal/swap"
	"mglrusim/internal/vmm"
	"mglrusim/internal/workload"
	"mglrusim/internal/workload/pagerank"
	"mglrusim/internal/workload/serve"
	"mglrusim/internal/workload/tpch"
	"mglrusim/internal/workload/ycsb"
	"mglrusim/internal/zram"
)

// --- simulation core ---

// Time is a virtual-time instant in nanoseconds.
type Time = sim.Time

// Duration is a virtual-time span in nanoseconds.
type Duration = sim.Duration

// Virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// RNG is the deterministic random source used throughout the simulator.
type RNG = sim.RNG

// NewRNG creates a seeded generator.
func NewRNG(seed uint64) *RNG { return sim.NewRNG(seed) }

// --- system configuration ---

// SystemConfig describes the simulated machine (CPUs, capacity ratio,
// swap medium, memory-manager tuning).
type SystemConfig = core.SystemConfig

// SwapKind selects the swap medium.
type SwapKind = core.SwapKind

// Swap media.
const (
	SwapSSD  = core.SwapSSD
	SwapZRAM = core.SwapZRAM
)

// DefaultSystemConfig mirrors the paper's testbed: 12 hardware threads,
// 50% memory capacity-to-footprint ratio, SSD swap (~7.5 ms per 4 KB).
func DefaultSystemConfig() SystemConfig { return core.DefaultSystemConfig() }

// SystemAt returns the default system at a given capacity ratio and swap
// medium — the two axes the paper sweeps.
func SystemAt(ratio float64, kind SwapKind) SystemConfig {
	return experiments.SystemAt(ratio, kind)
}

// SSDConfig and ZRAMConfig parameterize the swap devices.
type (
	SSDConfig  = swap.SSDConfig
	ZRAMConfig = swap.ZRAMConfig
)

// VMMConfig tunes the memory manager (fault overheads, reclaim batches,
// aging cadence, readahead window).
type VMMConfig = vmm.Config

// --- policies ---

// Policy is a page replacement policy; implement it to evaluate custom
// algorithms under the same harness as the built-ins.
type Policy = policy.Policy

// Kernel is the memory-manager view a Policy operates through.
type Kernel = policy.Kernel

// Shadow is the information remembered about an evicted page for refault
// classification.
type Shadow = policy.Shadow

// PolicyStats are the counters every policy reports.
type PolicyStats = policy.Stats

// PolicyCosts is the shared accessed-bit scanning cost model.
type PolicyCosts = policy.Costs

// PolicyFactory builds a fresh policy instance for one trial.
type PolicyFactory = core.PolicyFactory

// NewClock builds the classic two-list Clock-LRU with kernel-like
// defaults.
func NewClock() Policy { return clock.New(clock.DefaultConfig()) }

// ClockConfig parameterizes Clock-LRU.
type ClockConfig = clock.Config

// NewClockWith builds Clock-LRU from an explicit configuration.
func NewClockWith(cfg ClockConfig) Policy { return clock.New(cfg) }

// MGLRUConfig parameterizes the Multi-Generational LRU.
type MGLRUConfig = mglru.Config

// MGLRU variant configurations, matching the paper's labels.
func MGLRUDefault() MGLRUConfig           { return mglru.Default() }
func MGLRUGen14() MGLRUConfig             { return mglru.Gen14() }
func MGLRUScanAll() MGLRUConfig           { return mglru.ScanAll() }
func MGLRUScanNone() MGLRUConfig          { return mglru.ScanNone() }
func MGLRUScanRand(p float64) MGLRUConfig { return mglru.ScanRand(p) }

// NewMGLRU builds the default (kernel-configuration) MG-LRU.
func NewMGLRU() Policy { return mglru.New(mglru.Default()) }

// NewMGLRUWith builds MG-LRU from an explicit variant configuration.
func NewMGLRUWith(cfg MGLRUConfig) Policy { return mglru.New(cfg) }

// --- workloads ---

// Workload drives the simulated memory system.
type Workload = workload.Workload

// Stream is a lazy per-thread operation stream.
type Stream = workload.Stream

// Op is one workload operation.
type Op = workload.Op

// Operation kinds and request classes for custom workloads.
const (
	OpAccess   = workload.OpAccess
	OpCompute  = workload.OpCompute
	OpBarrier  = workload.OpBarrier
	OpReqStart = workload.OpReqStart
	OpReqEnd   = workload.OpReqEnd
	ReqRead    = workload.ReqRead
	ReqWrite   = workload.ReqWrite
)

// VPN is a virtual page number.
type VPN = pagetable.VPN

// TPCHConfig sizes the TPC-H / Spark-SQL workload model.
type TPCHConfig = tpch.Config

// TPCHDefaults returns the calibrated TPC-H configuration.
func TPCHDefaults() TPCHConfig { return tpch.DefaultConfig() }

// NewTPCH builds the TPC-H workload.
func NewTPCH(cfg TPCHConfig) Workload { return tpch.New(cfg) }

// PageRankConfig sizes the GAP PageRank workload model.
type PageRankConfig = pagerank.Config

// PageRankDefaults returns the calibrated PageRank configuration.
func PageRankDefaults() PageRankConfig { return pagerank.DefaultConfig() }

// NewPageRank builds the PageRank workload (generates its graph).
func NewPageRank(cfg PageRankConfig) Workload { return pagerank.New(cfg) }

// YCSBConfig sizes the YCSB/memcached workload model.
type YCSBConfig = ycsb.Config

// YCSBMix selects workload A, B, or C.
type YCSBMix = ycsb.Mix

// YCSB mixes.
const (
	YCSBA = ycsb.MixA
	YCSBB = ycsb.MixB
	YCSBC = ycsb.MixC
)

// YCSBDefaults returns the calibrated YCSB configuration for a mix.
func YCSBDefaults(mix YCSBMix) YCSBConfig { return ycsb.DefaultConfig(mix) }

// NewYCSB builds a YCSB workload.
func NewYCSB(cfg YCSBConfig) Workload { return ycsb.New(cfg) }

// ServeConfig sizes the serving-fleet workload model (file-backed
// object corpus, long-tailed sessions, diurnal phases, flash crowds).
type ServeConfig = serve.Config

// ServeDefaults returns the calibrated serving-fleet configuration.
func ServeDefaults() ServeConfig { return serve.DefaultConfig() }

// NewServe builds the serving-fleet workload. Its object corpus is a
// file segment: under a system with PageCache enabled those pages fault
// through the page cache instead of swap.
func NewServe(cfg ServeConfig) Workload { return serve.New(cfg) }

// PageCacheConfig tunes the file-backed page-cache mode
// (SystemConfig.PageCache). The zero value disables the mode.
type PageCacheConfig = pagecache.Config

// PageCacheStats are the page-cache counters inside Metrics.
type PageCacheStats = pagecache.Stats

// PageCacheDefaults returns the enabled page-cache profile with
// calibrated defaults (SSD backing, 10% dirty ratio, 100 ms flusher).
func PageCacheDefaults() PageCacheConfig { return pagecache.DefaultConfig() }

// ContentClass describes page compressibility for the ZRAM device.
type ContentClass = zram.ContentClass

// Content classes.
const (
	ClassZeroHeavy  = zram.ClassZeroHeavy
	ClassStructured = zram.ClassStructured
	ClassRandom     = zram.ClassRandom
)

// --- running trials ---

// Metrics is everything measured in one trial.
type Metrics = core.Metrics

// VMMCounters are the fault-path counters inside Metrics.
type VMMCounters = vmm.Counters

// DeviceStats are the swap-device counters inside Metrics.
type DeviceStats = swap.Stats

// LatencyRecorder collects per-request latencies (tail analysis).
type LatencyRecorder = stats.LatencyRecorder

// RunTrial executes one complete characterization trial: fresh system,
// full workload execution, metrics harvest. workloadSeed fixes the
// executed work; systemSeed varies everything else (scheduling, device
// jitter, hashing) the way rebooted-but-distinct runs differ.
func RunTrial(w Workload, mk PolicyFactory, sys SystemConfig, workloadSeed, systemSeed uint64) (Metrics, error) {
	return core.RunTrial(w, mk, sys, workloadSeed, systemSeed)
}

// --- experiment harness ---

// ExperimentOptions configure a harness run (trials per configuration,
// workload scale, seed).
type ExperimentOptions = experiments.Options

// DefaultExperimentOptions mirror the paper's methodology (25 trials).
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// Runner executes multi-trial series with caching across figures.
type Runner = experiments.Runner

// NewRunner creates a Runner.
func NewRunner(opts ExperimentOptions) *Runner { return experiments.NewRunner(opts) }

// Series is one (workload, policy, system) multi-trial result.
type Series = experiments.Series

// FigureResult is a reproduced figure: typed data plus text rendering.
type FigureResult = experiments.Result

// Figures maps figure IDs ("fig1".."fig12") to reproduction functions.
var Figures = experiments.Figures

// FigureIDs lists the figure IDs in paper order.
func FigureIDs() []string { return experiments.FigureIDs() }

// Extensions maps extension-experiment IDs to their functions: sweeps
// that go beyond the paper's twelve figures ("ext1" is the
// degraded-device sweep). Figures stays exactly the paper's set.
var Extensions = experiments.Extensions

// ExtensionIDs lists the extension experiment IDs.
func ExtensionIDs() []string { return experiments.ExtensionIDs() }

// PolicyNames lists the canonical policy names accepted by PolicyByName.
func PolicyNames() []string {
	return []string{
		experiments.PolClock, experiments.PolMGLRU, experiments.PolGen14,
		experiments.PolScanAll, experiments.PolScanNone, experiments.PolScanRand,
	}
}

// PolicyByName returns the factory for a canonical policy name.
func PolicyByName(name string) PolicyFactory { return experiments.PolicyByName(name).Make }

// --- fault injection & resilience ---

// FaultPlan is a deterministic fault-injection scenario: SSD latency
// storms and device stalls, transient read errors with bounded retry,
// zram pool mem-limit exhaustion with writeback-to-SSD fallback, and a
// swap-area cap that makes the OOM-killer model reachable. Set it on
// SystemConfig.Fault; the zero plan injects nothing and is byte-identical
// to an unfaulted run.
type FaultPlan = fault.Plan

// FaultStats counts what a plan injected (Metrics.Injected).
type FaultStats = fault.Stats

// FaultPreset resolves a named plan: "off", "mild", "severe".
func FaultPreset(name string) (FaultPlan, bool) { return fault.Preset(name) }

// FaultMild models occasional latency turbulence on an aging SSD.
func FaultMild() FaultPlan { return fault.Mild() }

// FaultSevere models a failing device: frequent storms, stalls, errors.
func FaultSevere() FaultPlan { return fault.Severe() }

// CheckpointStore persists completed experiment series so interrupted
// figure runs resume instead of re-executing (ExperimentOptions.Checkpoint).
type CheckpointStore = checkpoint.Store

// OpenCheckpoint opens (creating if needed) a checkpoint directory.
func OpenCheckpoint(dir string) (*CheckpointStore, error) { return checkpoint.Open(dir) }

// --- statistics re-exports ---

// Summary is a five-number summary with mean and deviation.
type Summary = stats.Summary

// Summarize computes a Summary.
func Summarize(xs []float64) Summary { return stats.Summarize(xs) }

// Percentile computes an interpolated percentile.
func Percentile(xs []float64, p float64) float64 { return stats.Percentile(xs, p) }

// LinearFit fits y = a*x+b and reports r².
func LinearFit(x, y []float64) stats.Regression { return stats.LinearFit(x, y) }

// WelchTTest compares two samples.
func WelchTTest(a, b []float64) stats.TTest { return stats.WelchTTest(a, b) }

// TailPoints are the percentiles the paper reports (p50..p99.99).
var TailPoints = stats.TailPoints

// --- low-level access for custom policies ---

// Memory, FrameID and Frame expose the physical-memory model to custom
// policies.
type (
	Memory  = mem.Memory
	FrameID = mem.FrameID
	Frame   = mem.Frame
	List    = mem.List
)

// NilFrame is the absent-frame sentinel.
const NilFrame = mem.NilFrame

// NewList creates an intrusive frame list with the given identity.
func NewList(m *Memory, id int16) *List { return mem.NewList(m, id) }

// PageTable exposes the page-table model (accessed-bit harvesting).
type PageTable = pagetable.Table

// RMap exposes the reverse map (physical-to-virtual resolution with a
// pointer-chase cost model).
type RMap = rmap.Map

// Env is the simulated-execution context passed to policies.
type Env = sim.Env

// DefaultPolicyCosts returns the calibrated scanning cost model.
func DefaultPolicyCosts() PolicyCosts { return policy.DefaultCosts() }
