// Public-API tests: the facade must be sufficient to run trials, build
// every policy variant and workload, and implement a custom policy.
package mglrusim_test

import (
	"testing"

	"mglrusim"
)

// tinySys speeds API tests up with a faster device.
func tinySys() mglrusim.SystemConfig {
	sys := mglrusim.DefaultSystemConfig()
	sys.SSD.ReadLatency = 300 * mglrusim.Microsecond
	sys.SSD.WriteLatency = 300 * mglrusim.Microsecond
	return sys
}

func tinyTPCH() mglrusim.Workload {
	cfg := mglrusim.TPCHDefaults()
	cfg.LineitemPages = 400
	cfg.OrdersPages = 100
	cfg.CustomerPages = 30
	cfg.HashPages = 120
	cfg.InputPages = 32
	cfg.Queries = 2
	return mglrusim.NewTPCH(cfg)
}

func TestPublicRunTrial(t *testing.T) {
	m, err := mglrusim.RunTrial(tinyTPCH(), mglrusim.NewMGLRU, tinySys(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runtime <= 0 || m.Counters.TotalFaults() == 0 {
		t.Fatalf("implausible metrics: %+v", m.Counters)
	}
}

func TestPublicPolicyVariants(t *testing.T) {
	for _, cfg := range []mglrusim.MGLRUConfig{
		mglrusim.MGLRUDefault(), mglrusim.MGLRUGen14(),
		mglrusim.MGLRUScanAll(), mglrusim.MGLRUScanNone(), mglrusim.MGLRUScanRand(0.5),
	} {
		p := mglrusim.NewMGLRUWith(cfg)
		if p.Name() == "" {
			t.Fatal("unnamed policy")
		}
	}
	if mglrusim.NewClock().Name() != "clock" {
		t.Fatal("clock name")
	}
}

func TestPublicPolicyByName(t *testing.T) {
	for _, name := range mglrusim.PolicyNames() {
		mk := mglrusim.PolicyByName(name)
		if mk() == nil {
			t.Fatalf("factory for %s returned nil", name)
		}
	}
}

func TestPublicWorkloads(t *testing.T) {
	ws := []mglrusim.Workload{
		tinyTPCH(),
		mglrusim.NewPageRank(func() mglrusim.PageRankConfig {
			c := mglrusim.PageRankDefaults()
			c.Graph.Vertices = 2048
			c.Iterations = 2
			return c
		}()),
		mglrusim.NewYCSB(func() mglrusim.YCSBConfig {
			c := mglrusim.YCSBDefaults(mglrusim.YCSBB)
			c.Items = 1500
			c.Requests = 5000
			return c
		}()),
	}
	for _, w := range ws {
		if w.FootprintPages() <= 0 {
			t.Fatalf("%s: no footprint", w.Name())
		}
		if _, err := mglrusim.RunTrial(w, mglrusim.NewClock, tinySys(), 1, 3); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
	}
}

func TestPublicSystemAt(t *testing.T) {
	sys := mglrusim.SystemAt(0.75, mglrusim.SwapZRAM)
	if sys.Ratio != 0.75 || sys.Swap != mglrusim.SwapZRAM {
		t.Fatalf("SystemAt wrong: %+v", sys)
	}
}

func TestPublicStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if mglrusim.Summarize(xs).Median != 3 {
		t.Fatal("Summarize")
	}
	if mglrusim.Percentile(xs, 100) != 5 {
		t.Fatal("Percentile")
	}
	if r := mglrusim.LinearFit(xs, xs); r.R2 < 0.999 {
		t.Fatal("LinearFit")
	}
	if p := mglrusim.WelchTTest(xs, xs); p.P < 0.99 {
		t.Fatal("WelchTTest identical samples")
	}
}

// minimalPolicy checks the Policy interface is implementable from outside
// (compile-time + runtime): random eviction.
type minimalPolicy struct {
	k     mglrusim.Kernel
	list  *mglrusim.List
	stats mglrusim.PolicyStats
}

func (p *minimalPolicy) Name() string                { return "random" }
func (p *minimalPolicy) Attach(k mglrusim.Kernel)    { p.k = k; p.list = mglrusim.NewList(k.Mem(), 0) }
func (p *minimalPolicy) Age(v *mglrusim.Env) bool    { return false }
func (p *minimalPolicy) NeedsAging() bool            { return false }
func (p *minimalPolicy) Stats() mglrusim.PolicyStats { return p.stats }

func (p *minimalPolicy) PageIn(v *mglrusim.Env, f mglrusim.FrameID, sh *mglrusim.Shadow) {
	p.list.PushHead(f)
}

func (p *minimalPolicy) Reclaim(v *mglrusim.Env, target int) int {
	n := 0
	for n < target {
		f := p.list.PopTail()
		if f == mglrusim.NilFrame {
			break
		}
		p.stats.Evicted++
		p.k.EvictPage(v, f, mglrusim.Shadow{EvictedAt: v.Now()})
		n++
	}
	return n
}

func TestPublicCustomPolicy(t *testing.T) {
	m, err := mglrusim.RunTrial(tinyTPCH(),
		func() mglrusim.Policy { return &minimalPolicy{} }, tinySys(), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy.Evicted == 0 {
		t.Fatal("custom policy never evicted")
	}
}

func TestPublicFigureRegistry(t *testing.T) {
	if len(mglrusim.Figures) != 12 || len(mglrusim.FigureIDs()) != 12 {
		t.Fatal("figure registry incomplete")
	}
}

func TestPublicTieringTrial(t *testing.T) {
	res, err := mglrusim.RunTieringTrial(mglrusim.TieringTrialConfig{
		Policy:    "tpp",
		Footprint: 512,
		FastPages: 128,
		SlowPages: 416,
		Touches:   20000,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FastHitRatio <= 0 || res.Runtime <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Promotions == 0 {
		t.Fatal("tpp never promoted")
	}
	if _, err := mglrusim.MigrationPolicyByName("nope"); err == nil {
		t.Fatal("unknown migration policy accepted")
	}
	if _, err := mglrusim.RunTieringTrial(mglrusim.TieringTrialConfig{
		Policy: "tpp", Footprint: 100, FastPages: 10, SlowPages: 10, Touches: 10,
	}); err == nil {
		t.Fatal("undersized tiers accepted")
	}
}
