package mglrusim

import (
	"fmt"

	"mglrusim/internal/pagetable"
	"mglrusim/internal/sim"
	"mglrusim/internal/tiering"
	"mglrusim/internal/workload"
)

// This file exposes the tiered-memory extension (paper §II-C: page
// migration between memory tiers) through the public API.

// TieringConfig sizes a two-tier memory system.
type TieringConfig = tiering.Config

// TieringManager is the two-tier memory manager.
type TieringManager = tiering.Manager

// MigrationPolicy decides page placement between tiers.
type MigrationPolicy = tiering.MigrationPolicy

// Migration policy constructors.
func NewTPP() MigrationPolicy      { return tiering.NewTPP() }
func NewAutoNUMA() MigrationPolicy { return tiering.NewAutoNUMA() }
func NewStatic() MigrationPolicy   { return tiering.Static{} }

// MigrationPolicyByName resolves "tpp", "autonuma", or "static".
func MigrationPolicyByName(name string) (MigrationPolicy, error) {
	switch name {
	case "tpp":
		return NewTPP(), nil
	case "autonuma":
		return NewAutoNUMA(), nil
	case "static":
		return NewStatic(), nil
	}
	return nil, fmt.Errorf("mglrusim: unknown migration policy %q", name)
}

// TieringTrialConfig describes a self-contained tiered-memory trial: a
// zipfian workload over a footprint split across two tiers.
type TieringTrialConfig struct {
	// Policy is "tpp", "autonuma", or "static".
	Policy string
	// Footprint is the mapped pages; FastPages+SlowPages must exceed it.
	Footprint int
	// FastPages and SlowPages size the tiers.
	FastPages, SlowPages int
	// Touches is the number of page accesses.
	Touches int
	// Theta is the access skew (default 0.9).
	Theta float64
	// TickEvery runs the policy's background work each N touches
	// (default 256).
	TickEvery int
	// Seed drives the access stream and policy randomness.
	Seed uint64
}

// TieringTrialResult reports a tiered-memory trial's outcome.
type TieringTrialResult struct {
	FastHitRatio     float64
	Promotions       uint64
	Demotions        uint64
	PromotionsDenied uint64
	HintFaults       uint64
	Runtime          Time
}

// RunTieringTrial runs one tiered-memory migration trial.
func RunTieringTrial(cfg TieringTrialConfig) (TieringTrialResult, error) {
	if cfg.Footprint <= 0 || cfg.Touches <= 0 {
		return TieringTrialResult{}, fmt.Errorf("mglrusim: invalid tiering trial config")
	}
	if cfg.FastPages+cfg.SlowPages < cfg.Footprint {
		return TieringTrialResult{}, fmt.Errorf("mglrusim: tiers (%d) smaller than footprint (%d)",
			cfg.FastPages+cfg.SlowPages, cfg.Footprint)
	}
	if cfg.Theta <= 0 {
		cfg.Theta = 0.9
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 256
	}
	pol, err := MigrationPolicyByName(cfg.Policy)
	if err != nil {
		return TieringTrialResult{}, err
	}

	regions := (cfg.Footprint + pagetable.PTEsPerRegion - 1) / pagetable.PTEsPerRegion
	table := pagetable.New(regions)
	table.MapRange(0, cfg.Footprint, false)
	rng := sim.NewRNG(cfg.Seed)
	mgr := tiering.New(tiering.DefaultConfig(cfg.FastPages, cfg.SlowPages), table, pol, rng.Stream(1))

	eng := sim.NewEngine(4)
	eng.Spawn("app", false, func(v *sim.Env) {
		mgr.Populate(v)
		zipf := workload.NewScrambledZipfian(int64(cfg.Footprint), cfg.Theta)
		r := rng.Stream(2)
		for i := 0; i < cfg.Touches; i++ {
			mgr.Touch(v, pagetable.VPN(zipf.Next(r)), r.Bool(0.2))
			if i%cfg.TickEvery == 0 {
				pol.Tick(v)
			}
		}
	})
	if err := eng.Run(); err != nil {
		return TieringTrialResult{}, err
	}
	c := mgr.Counters()
	return TieringTrialResult{
		FastHitRatio:     mgr.FastHitRatio(),
		Promotions:       c.Promotions,
		Demotions:        c.Demotions,
		PromotionsDenied: c.PromotionsDenied,
		HintFaults:       c.HintFaults,
		Runtime:          eng.Now(),
	}, nil
}
